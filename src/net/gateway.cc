#include "net/gateway.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"
#include "engine/engine.hh"
#include "net/client.hh"
#include "obs/trace_export.hh"
#include "serve/plan_cache.hh"
#include "serve/server_stats.hh"

namespace sap {

namespace {

/** Wait period; bounds ping/reconnect tick granularity too. */
constexpr int kWaitTimeoutMs = 50;

/** Event-loop key layout: 0 = wake pipe, 1 = listen socket,
 *  kBackendKeyBase + i = backend i, client ids from next_conn_id_. */
constexpr std::uint64_t kWakeKey = 0;
constexpr std::uint64_t kListenKey = 1;
constexpr std::uint64_t kBackendKeyBase = 2;

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string
errnoString(const char *what)
{
    return std::string(what) + ": " + std::strerror(errno);
}

/** " trace=<32hex>" when @p ctx is valid, "" otherwise — the log ↔
 *  trace correlation suffix for failover/resubmit lines. */
std::string
traceSuffix(const TraceContext &ctx)
{
    return ctx.valid() ? " trace=" + traceIdHex(ctx) : std::string();
}

} // namespace

//----------------------------------------------------------------------
// Lifecycle.
//----------------------------------------------------------------------

Gateway::Gateway(const Options &opts)
    : opts_(opts),
      metrics_(opts.metrics ? std::make_unique<MetricsRegistry>()
                            : nullptr),
      collector_(opts.trace, metrics_.get())
{
    SAP_ASSERT(!opts_.backends.empty(),
               "gateway needs at least one backend");
    if (metrics_) {
        inst_.requests = &metrics_->counter("gateway_requests_total");
        inst_.relayed =
            &metrics_->counter("gateway_responses_relayed_total");
        inst_.failovers =
            &metrics_->counter("gateway_failovers_total");
        inst_.resubmits =
            &metrics_->counter("gateway_resubmits_total");
        inst_.errors = &metrics_->counter("gateway_errors_total");
        inst_.backendsRoutable = &metrics_->gauge(
            "gateway_backends_routable", GaugeAgg::Sum);
        inst_.clientsLive =
            &metrics_->gauge("gateway_clients_live", GaugeAgg::Sum);
        inst_.routeMicros =
            &metrics_->histogram("gateway_route_micros");
    }
    backends_.reserve(opts_.backends.size());
    for (std::size_t i = 0; i < opts_.backends.size(); ++i) {
        backends_.push_back(std::make_unique<Backend>(
            opts_.backends[i], opts_.maxPayloadBytes));
        if (metrics_)
            backends_.back()->inflightGauge = &metrics_->gauge(
                "gateway_backend_inflight_" + std::to_string(i),
                GaugeAgg::Sum);
    }
}

Gateway::~Gateway()
{
    stop();
}

bool
Gateway::start()
{
    std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
    if (running_.load()) {
        error_ = "start() called twice";
        return false;
    }
    if (stopped_) {
        error_ = "Gateway cannot be restarted after stop(); "
                 "construct a new instance";
        return false;
    }

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        error_ = errnoString("socket");
        return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        // Front-door backlog: a reconnect storm (every client of a
        // restarted fleet at once) must queue, not shed SYNs onto
        // 1-second client retry timers. Clamped to somaxconn by the
        // kernel.
        ::listen(listen_fd_, 1024) != 0 ||
        !setNonBlocking(listen_fd_)) {
        error_ = errnoString("bind/listen");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        error_ = errnoString("getsockname");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    port_ = ntohs(addr.sin_port);

    if (::pipe(wake_pipe_) != 0 || !setNonBlocking(wake_pipe_[0]) ||
        !setNonBlocking(wake_pipe_[1])) {
        error_ = errnoString("pipe");
        ::close(listen_fd_);
        listen_fd_ = -1;
        if (wake_pipe_[0] >= 0)
            ::close(wake_pipe_[0]);
        if (wake_pipe_[1] >= 0)
            ::close(wake_pipe_[1]);
        wake_pipe_[0] = wake_pipe_[1] = -1;
        return false;
    }

    // Client ids must stay clear of the backend key range.
    next_conn_id_ = std::max<std::uint64_t>(
        16, kBackendKeyBase + backends_.size());

    // Admin plane before the IO thread (as NetServer): if its port
    // cannot bind, start() fails with only sockets to unwind.
    if (opts_.adminEnabled) {
        health_ = std::make_unique<HealthModel>(opts_.health);
        FlightRecorderConfig rc;
        rc.intervalSeconds = opts_.samplerIntervalSeconds;
        rc.retainSamples = opts_.samplerRetainSamples;
        recorder_ = std::make_unique<FlightRecorder>(
            [this] { return metricsSnapshot(); }, rc);
        HttpAdminServer::Options admin_opts;
        admin_opts.port = opts_.adminPort;
        admin_ = std::make_unique<HttpAdminServer>(admin_opts);
        registerAdminRoutes(*admin_);
        if (!admin_->start()) {
            error_ = "admin: " + admin_->error();
            admin_.reset();
            recorder_.reset();
            health_.reset();
            ::close(listen_fd_);
            listen_fd_ = -1;
            ::close(wake_pipe_[0]);
            ::close(wake_pipe_[1]);
            wake_pipe_[0] = wake_pipe_[1] = -1;
            return false;
        }
        recorder_->start();
    }

    exiting_.store(false);
    running_.store(true);
    io_thread_ = std::thread([this] { ioLoop(); });

    bool any_admin = false;
    for (const auto &b : backends_)
        any_admin |= b->addr.adminPort != 0;
    if (any_admin && opts_.healthzIntervalMs > 0)
        prober_thread_ = std::thread([this] { proberLoop(); });

    SAP_LOG_INFO("gateway listening on 127.0.0.1:", port_, " over ",
                 backends_.size(), " backends (",
                 EventLoop::backendName(), ")");
    return true;
}

void
Gateway::stop()
{
    std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
    if (!running_.load())
        return;
    // Admin plane first: its /tracez handler round-trips through the
    // still-live data plane; stopping it before the IO thread keeps
    // that path well-defined.
    if (admin_)
        admin_->stop();
    if (recorder_)
        recorder_->stop();
    exiting_.store(true);
    wakeIoThread();
    if (io_thread_.joinable())
        io_thread_.join();
    if (prober_thread_.joinable())
        prober_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    for (int i = 0; i < 2; ++i)
        if (wake_pipe_[i] >= 0) {
            ::close(wake_pipe_[i]);
            wake_pipe_[i] = -1;
        }
    running_.store(false);
    stopped_ = true;
}

void
Gateway::wakeIoThread()
{
    if (wake_pipe_[1] >= 0) {
        std::uint8_t b = 1;
        [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
    }
}

GatewayStats
Gateway::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

MetricsSnapshot
Gateway::metricsSnapshot() const
{
    return metrics_ ? metrics_->snapshot() : MetricsSnapshot{};
}

//----------------------------------------------------------------------
// Backend liveness and the ring.
//----------------------------------------------------------------------

void
Gateway::rebuildRing()
{
    ring_map_.clear();
    for (std::size_t i = 0; i < backends_.size(); ++i)
        if (backends_[i]->routable)
            ring_map_.push_back(i);
    ring_ = ring_map_.empty()
                ? nullptr
                : std::make_unique<ConsistentHashRouter>(
                      ring_map_.size(), opts_.virtualNodesPerBackend);
    routable_count_.store(ring_map_.size());
    if (inst_.backendsRoutable)
        inst_.backendsRoutable->set(
            static_cast<double>(ring_map_.size()));
}

void
Gateway::tryConnect(std::size_t idx)
{
    Backend &b = *backends_[idx];
    const std::uint64_t key = kBackendKeyBase + idx;
    if (!b.conn.connectStart(b.addr.host, b.addr.port)) {
        b.reconnectWaitMs = opts_.reconnectIntervalMs;
        return;
    }
    loop_.set(b.conn.fd(), b.conn.desiredInterest(), key);
    if (b.conn.connected())
        sendLivenessPing(idx); // loopback can connect synchronously
}

void
Gateway::sendLivenessPing(std::size_t idx)
{
    Backend &b = *backends_[idx];
    b.pingTag = next_tag_++;
    b.pingOutstanding = true;
    b.conn.send(buildPingFrame(b.pingTag));
    updateBackendInterest(idx);
}

void
Gateway::updateBackendInterest(std::size_t idx)
{
    Backend &b = *backends_[idx];
    if (b.conn.fd() >= 0)
        loop_.set(b.conn.fd(), b.conn.desiredInterest(),
                  kBackendKeyBase + idx);
}

void
Gateway::backendUp(std::size_t idx)
{
    Backend &b = *backends_[idx];
    if (b.routable)
        return;
    b.routable = true;
    rebuildRing();
    SAP_LOG_INFO("gateway: backend ", idx, " (", b.addr.host, ":",
                 b.addr.port, ") routable, ring size ",
                 ring_map_.size());
}

void
Gateway::backendDown(std::size_t idx, const std::string &reason)
{
    Backend &b = *backends_[idx];
    const bool was_routable = b.routable;
    if (b.conn.fd() >= 0) {
        loop_.remove(b.conn.fd());
        b.conn.close();
    } else if (b.conn.state() == AsyncClient::State::Closed) {
        b.conn.close(); // reset Closed → Idle for the reconnect path
    }
    b.routable = false;
    b.pingOutstanding = false;
    b.missedPings = 0;
    b.reconnectWaitMs = opts_.reconnectIntervalMs;
    b.inflight = 0;
    if (b.inflightGauge)
        b.inflightGauge->set(0);

    if (was_routable) {
        SAP_LOG_WARN("gateway: backend ", idx, " down (", reason,
                     "); failing over");
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.failovers;
        }
        if (inst_.failovers)
            inst_.failovers->add();
        rebuildRing();
    }

    // Release gather legs owed by this backend: the merge simply
    // proceeds without its part.
    for (auto it = gather_tags_.begin(); it != gather_tags_.end();) {
        if (it->second.backendIdx != idx) {
            ++it;
            continue;
        }
        std::uint64_t gather_id = it->second.gatherId;
        it = gather_tags_.erase(it);
        auto git = gathers_.find(gather_id);
        if (git != gathers_.end() && git->second.awaiting > 0) {
            --git->second.awaiting;
            finishGatherIfDone(gather_id);
        }
    }

    // Migrate the in-flight SUBMITs that were awaiting this backend:
    // serving is pure compute, so resubmission re-executes safely,
    // and the client sees at most one reply because the in-flight
    // entry is erased when the first response relays. A request out
    // of resubmit budget (or with nowhere to go) gets a clean ERROR
    // — clients never hang on a dead backend.
    std::vector<std::uint64_t> to_move;
    for (const auto &entry : inflight_)
        if (entry.second.backendIdx == idx)
            to_move.push_back(entry.first);
    for (std::uint64_t gwtag : to_move) {
        Inflight &fl = inflight_[gwtag];
        if (fl.resubmits < opts_.maxResubmits && ring_ != nullptr) {
            ++fl.resubmits;
            // The attempt counter rides the propagated context so
            // both tiers' traces record which delivery this was.
            fl.ctx.attempt =
                static_cast<std::uint8_t>(fl.resubmits);
            if (fl.trace)
                fl.trace->addEvent("resubmit attempt " +
                                   std::to_string(fl.resubmits));
            fl.backendIdx = ring_map_[ring_->shardFor(fl.digest)];
            Backend &nb = *backends_[fl.backendIdx];
            nb.conn.send(buildForwardFrame(
                gwtag, fl.digest, fl.submitPayload,
                fl.ctx.valid() ? &fl.ctx : nullptr));
            ++nb.inflight;
            if (nb.inflightGauge)
                nb.inflightGauge->set(
                    static_cast<double>(nb.inflight));
            updateBackendInterest(fl.backendIdx);
            SAP_LOG_WARN("gateway: resubmitting request to backend ",
                         fl.backendIdx, " attempt ", fl.resubmits,
                         traceSuffix(fl.ctx));
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.resubmits;
            }
            if (inst_.resubmits)
                inst_.resubmits->add();
        } else {
            Inflight fl_copy = std::move(fl);
            inflight_.erase(gwtag);
            SAP_LOG_WARN("gateway: resubmit budget spent after ",
                         fl_copy.resubmits, " tries",
                         traceSuffix(fl_copy.ctx));
            if (fl_copy.trace) {
                fl_copy.trace->addEvent("resubmit budget spent");
                fl_copy.trace->ok = false;
                collector_.finish(fl_copy.trace);
            }
            sendClientError(fl_copy.clientConnId, fl_copy.clientTag,
                            "backend failed (" + reason +
                                ") and the resubmit budget is spent");
        }
    }
}

void
Gateway::sendPings()
{
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        if (b.routable && !b.adminHealthy.load()) {
            backendDown(i, "healthz probe failed");
            continue;
        }
        if (!b.conn.connected())
            continue;
        if (b.pingOutstanding) {
            if (++b.missedPings >= opts_.pingMissLimit)
                backendDown(i, "ping timeout");
        } else {
            sendLivenessPing(i);
        }
    }
}

void
Gateway::tryReconnects(int elapsed_ms)
{
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        if (b.conn.fd() >= 0)
            continue; // connected or connecting
        b.reconnectWaitMs -= elapsed_ms;
        if (b.reconnectWaitMs > 0)
            continue;
        b.reconnectWaitMs = opts_.reconnectIntervalMs;
        if (b.conn.state() == AsyncClient::State::Closed)
            b.conn.close(); // reset to Idle
        tryConnect(i);
    }
}

//----------------------------------------------------------------------
// Client side.
//----------------------------------------------------------------------

void
Gateway::acceptReady()
{
    for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK)
                listen_backoff_ = 20; // ~1 s of wait periods
            return;
        }
        if (!setNonBlocking(fd)) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::uint64_t conn_id = next_conn_id_++;
        auto [it, inserted] = conns_.emplace(
            conn_id,
            std::make_unique<ClientConn>(fd, opts_.maxPayloadBytes));
        updateClientInterest(conn_id, *it->second);
        if (inst_.clientsLive)
            inst_.clientsLive->add(1);
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.connectionsAccepted;
        }
        SAP_LOG_DEBUG("gateway: conn ", conn_id, " accepted");
    }
}

void
Gateway::updateClientInterest(std::uint64_t conn_id, ClientConn &conn)
{
    const std::size_t queued = conn.outbuf.size() - conn.outoff;
    std::uint32_t mask = 0;
    if (!conn.closing && queued <= opts_.maxQueuedOutputBytes)
        mask |= EventLoop::kRead;
    if (queued > 0)
        mask |= EventLoop::kWrite;
    if (mask != conn.interest) {
        loop_.set(conn.fd, mask, conn_id);
        conn.interest = mask;
    }
}

void
Gateway::closeClientConn(std::uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    loop_.remove(it->second->fd);
    ::close(it->second->fd);
    conns_.erase(it);
    closing_conns_.erase(conn_id);
    if (inst_.clientsLive)
        inst_.clientsLive->add(-1);
    SAP_LOG_DEBUG("gateway: conn ", conn_id, " closed");
}

bool
Gateway::clientOwedWork(std::uint64_t conn_id) const
{
    for (const auto &entry : inflight_)
        if (entry.second.clientConnId == conn_id)
            return true;
    for (const auto &entry : gathers_)
        if (entry.second.clientConnId == conn_id)
            return true;
    return false;
}

void
Gateway::sendToClient(std::uint64_t conn_id,
                      std::vector<std::uint8_t> bytes)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return; // client went away; the reply is dropped
    ClientConn &conn = *it->second;
    if (conn.outbuf.empty()) {
        conn.outbuf = std::move(bytes);
        conn.outoff = 0;
    } else {
        conn.outbuf.insert(conn.outbuf.end(), bytes.begin(),
                           bytes.end());
    }
    updateClientInterest(conn_id, conn);
}

void
Gateway::sendClientError(std::uint64_t conn_id, std::uint64_t tag,
                         const std::string &message)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.errorsReturned;
    }
    if (inst_.errors)
        inst_.errors->add();
    sendToClient(conn_id, buildErrorFrame(tag, message));
}

bool
Gateway::readReady(std::uint64_t conn_id, ClientConn &conn)
{
    std::uint8_t buf[65536];
    for (;;) {
        if (conn.closing)
            return true;
        ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.decoder.feed(buf, static_cast<std::size_t>(n));
            for (;;) {
                Frame frame;
                std::string err;
                FrameDecoder::Result res =
                    conn.decoder.next(&frame, &err);
                if (res == FrameDecoder::Result::NeedMore)
                    break;
                if (res == FrameDecoder::Result::Ok) {
                    handleClientFrame(conn_id, conn,
                                      std::move(frame));
                    continue;
                }
                // Frame-level violation: ERROR, then close after
                // the flush (same policy as NetServer).
                SAP_LOG_WARN("gateway: conn ", conn_id,
                             ": unrecoverable frame error: ", err);
                sendClientError(conn_id, 0, err);
                conn.closing = true;
                return true;
            }
            continue;
        }
        if (n == 0) {
            conn.closing = true;
            return true;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
}

bool
Gateway::flushClient(ClientConn &conn)
{
    while (conn.outoff < conn.outbuf.size()) {
        ssize_t n =
            ::send(conn.fd, conn.outbuf.data() + conn.outoff,
                   conn.outbuf.size() - conn.outoff, MSG_NOSIGNAL);
        if (n > 0) {
            conn.outoff += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    conn.outbuf.clear();
    conn.outoff = 0;
    return true;
}

//----------------------------------------------------------------------
// Routing.
//----------------------------------------------------------------------

void
Gateway::routeSubmit(std::uint64_t conn_id, std::uint64_t client_tag,
                     Digest digest,
                     std::vector<std::uint8_t> submit_payload,
                     const TraceContext &ctx,
                     std::shared_ptr<RequestTrace> trace)
{
    if (inst_.requests)
        inst_.requests->add();
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requestsRouted;
    }
    if (ring_ == nullptr) {
        sendClientError(conn_id, client_tag, "no routable backend");
        if (trace) {
            trace->ok = false;
            collector_.finish(trace);
        }
        return;
    }
    const std::size_t idx = ring_map_[ring_->shardFor(digest)];
    traceStamp(trace, TraceStage::Route);
    const std::uint64_t gwtag = next_tag_++;
    Backend &b = *backends_[idx];
    b.conn.send(buildForwardFrame(gwtag, digest, submit_payload,
                                  ctx.valid() ? &ctx : nullptr));
    traceStamp(trace, TraceStage::Dequeue); // "gw_forward"
    ++b.inflight;
    if (b.inflightGauge)
        b.inflightGauge->set(static_cast<double>(b.inflight));
    updateBackendInterest(idx);
    Inflight fl;
    fl.clientConnId = conn_id;
    fl.clientTag = client_tag;
    fl.backendIdx = idx;
    fl.digest = digest;
    fl.submitPayload = std::move(submit_payload);
    fl.start = std::chrono::steady_clock::now();
    fl.ctx = ctx;
    fl.trace = std::move(trace);
    inflight_.emplace(gwtag, std::move(fl));
}

void
Gateway::startGather(std::uint64_t conn_id, std::uint64_t client_tag,
                     Gather::Kind kind)
{
    const std::uint64_t gather_id = next_gather_id_++;
    Gather g;
    g.clientConnId = conn_id;
    g.clientTag = client_tag;
    g.kind = kind;
    if (kind == Gather::Kind::Metrics)
        g.metricsMerged = metricsSnapshot();
    if (kind == Gather::Kind::Traces) {
        // Seed with the gateway's own rings; backend parts append.
        g.tracesMerged = collector_.snapshot();
        g.tracesTotal = collector_.totalCommitted();
    }
    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        if (!b.routable)
            continue;
        const std::uint64_t gwtag = next_tag_++;
        gather_tags_[gwtag] = {gather_id, i};
        b.conn.send(kind == Gather::Kind::Metrics
                        ? buildMetricsRequestFrame(gwtag)
                    : kind == Gather::Kind::Traces
                        ? buildTracesRequestFrame(gwtag)
                        : buildStatsRequestFrame(gwtag));
        updateBackendInterest(i);
        ++g.awaiting;
    }
    gathers_.emplace(gather_id, std::move(g));
    finishGatherIfDone(gather_id); // zero routable backends
}

void
Gateway::finishGatherIfDone(std::uint64_t gather_id)
{
    auto it = gathers_.find(gather_id);
    if (it == gathers_.end() || it->second.awaiting > 0)
        return;
    Gather g = std::move(it->second);
    gathers_.erase(it);
    std::vector<std::uint8_t> reply;
    switch (g.kind) {
    case Gather::Kind::Metrics:
        reply = buildMetricsFrame(g.clientTag, g.metricsMerged);
        break;
    case Gather::Kind::Traces:
        reply = buildTracesFrame(g.clientTag, g.tracesMerged,
                                 g.tracesTotal);
        break;
    case Gather::Kind::Stats:
        reply = buildStatsFrame(g.clientTag,
                                mergeServerStats(g.statsParts));
        break;
    }
    sendToClient(g.clientConnId, std::move(reply));
}

std::shared_ptr<RequestTrace>
Gateway::admitTrace(TraceContext *ctx, const ServeRequest &req)
{
    // The edge owns the head-sampling decision: a request that
    // arrives without a context gets one minted here (sampled 1-in-N
    // by the gateway's counter); one that arrives with a context
    // keeps it — sampling is decided exactly once per request.
    if (!ctx->valid() && collector_.enabled())
        *ctx = makeTraceContext(collector_.headSample());
    std::shared_ptr<RequestTrace> trace = collector_.adopt(*ctx);
    if (trace) {
        trace->tier = TraceTier::Gateway;
        trace->label = req.engine;
        trace->kind = problemKindName(req.plan.kind);
        trace->stamp(TraceStage::Decode);
    }
    return trace;
}

void
Gateway::handleClientFrame(std::uint64_t conn_id, ClientConn &conn,
                           Frame &&frame)
{
    (void)conn;
    const std::uint64_t tag = frame.header.tag;
    switch (frame.header.type) {
    case static_cast<std::uint16_t>(FrameType::Submit): {
        // Decode with full wire strictness (bad payloads must not
        // reach a backend), but only the digest is consumed here;
        // the payload bytes relay as-is inside a FORWARD.
        ServeRequest req;
        std::string err;
        if (!decodeSubmit(frame.payload, &req, &err)) {
            sendClientError(conn_id, tag, err);
            return;
        }
        TraceContext ctx = req.traceContext;
        std::shared_ptr<RequestTrace> trace = admitTrace(&ctx, req);
        Digest digest = planDigest(req.engine, req.plan);
        routeSubmit(conn_id, tag, digest, std::move(frame.payload),
                    ctx, std::move(trace));
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Forward): {
        // A gateway one tier up already computed the digest: strip
        // it, validate the embedded SUBMIT, and route — rings of
        // rings compose.
        Digest digest = 0;
        ServeRequest req;
        std::string err;
        if (!decodeForward(frame.payload, &digest, &req, &err)) {
            sendClientError(conn_id, tag, err);
            return;
        }
        // Strip the FORWARD envelope: digest (8) + context marker
        // (1) + the context block when the marker says so (the
        // decode above validated both).
        const std::size_t strip =
            9 + (frame.payload[8] == 1 ? kTraceContextBytes : 0);
        std::vector<std::uint8_t> submit_payload(
            frame.payload.begin() +
                static_cast<std::ptrdiff_t>(strip),
            frame.payload.end());
        TraceContext ctx = req.traceContext;
        std::shared_ptr<RequestTrace> trace = admitTrace(&ctx, req);
        routeSubmit(conn_id, tag, digest, std::move(submit_payload),
                    ctx, std::move(trace));
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Ping): {
        // Answered at the gateway: PING measures the front door.
        sendToClient(conn_id,
                     buildFrame(FrameType::Ping, tag, frame.payload));
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Stats):
        startGather(conn_id, tag, Gather::Kind::Stats);
        return;
    case static_cast<std::uint16_t>(FrameType::Metrics):
        startGather(conn_id, tag, Gather::Kind::Metrics);
        return;
    case static_cast<std::uint16_t>(FrameType::Traces):
        startGather(conn_id, tag, Gather::Kind::Traces);
        return;
    default:
        sendClientError(conn_id, tag,
                        "unexpected " +
                            frameTypeName(frame.header.type) +
                            " frame at the gateway");
        return;
    }
}

//----------------------------------------------------------------------
// Backend frames.
//----------------------------------------------------------------------

void
Gateway::handleBackendFrame(std::size_t idx, Frame &&frame)
{
    Backend &b = *backends_[idx];
    const std::uint64_t tag = frame.header.tag;

    switch (frame.header.type) {
    case static_cast<std::uint16_t>(FrameType::Response):
    case static_cast<std::uint16_t>(FrameType::Error): {
        auto it = inflight_.find(tag);
        if (it == inflight_.end())
            return; // late duplicate after a failover: dropped
        Inflight fl = std::move(it->second);
        inflight_.erase(it);
        if (b.inflight > 0)
            --b.inflight;
        if (b.inflightGauge)
            b.inflightGauge->set(static_cast<double>(b.inflight));
        if (fl.trace) {
            fl.trace->stamp(TraceStage::WriterPop); // "gw_relay_pop"
            fl.trace->ok =
                frame.header.type ==
                static_cast<std::uint16_t>(FrameType::Response);
        }
        // Relay the payload bytes verbatim under the client's tag.
        sendToClient(
            fl.clientConnId,
            buildFrame(static_cast<FrameType>(frame.header.type),
                       fl.clientTag, frame.payload));
        if (fl.trace) {
            fl.trace->stamp(TraceStage::Flush); // "gw_flush"
            collector_.finish(fl.trace);
        }
        if (inst_.routeMicros)
            inst_.routeMicros->record(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - fl.start)
                    .count());
        if (inst_.relayed)
            inst_.relayed->add();
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.responsesRelayed;
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Ping): {
        if (b.pingOutstanding && tag == b.pingTag) {
            b.pingOutstanding = false;
            b.missedPings = 0;
            if (!b.routable && b.adminHealthy.load())
                backendUp(idx);
        }
        return;
    }
    case static_cast<std::uint16_t>(FrameType::Stats):
    case static_cast<std::uint16_t>(FrameType::Metrics):
    case static_cast<std::uint16_t>(FrameType::Traces): {
        auto it = gather_tags_.find(tag);
        if (it == gather_tags_.end())
            return;
        std::uint64_t gather_id = it->second.gatherId;
        gather_tags_.erase(it);
        auto git = gathers_.find(gather_id);
        if (git == gathers_.end())
            return;
        Gather &g = git->second;
        std::string err;
        if (g.kind == Gather::Kind::Metrics) {
            MetricsSnapshot part;
            if (decodeMetrics(frame.payload, &part, &err))
                g.metricsMerged.merge(part);
        } else if (g.kind == Gather::Kind::Traces) {
            std::vector<RequestTrace> part;
            std::uint64_t part_total = 0;
            if (decodeTraces(frame.payload, &part, &part_total,
                             &err)) {
                g.tracesTotal += part_total;
                for (RequestTrace &t : part)
                    g.tracesMerged.push_back(std::move(t));
            }
        } else {
            ServerStats part;
            if (decodeStats(frame.payload, &part, &err))
                g.statsParts.push_back(std::move(part));
        }
        if (g.awaiting > 0)
            --g.awaiting;
        finishGatherIfDone(gather_id);
        return;
    }
    default:
        // A backend speaking garbage frame types is suspect but not
        // fatal; liveness pings decide its fate.
        SAP_LOG_WARN("gateway: backend ", idx, " sent unexpected ",
                     frameTypeName(frame.header.type), " frame");
        return;
    }
}

//----------------------------------------------------------------------
// The IO loop.
//----------------------------------------------------------------------

void
Gateway::ioLoop()
{
    SAP_ASSERT(loop_.valid(), "event loop creation failed (",
               EventLoop::backendName(), ")");
    loop_.set(wake_pipe_[0], EventLoop::kRead, kWakeKey);
    loop_.set(listen_fd_, EventLoop::kRead, kListenKey);

    for (std::size_t i = 0; i < backends_.size(); ++i) {
        Backend &b = *backends_[i];
        const std::size_t idx = i;
        b.conn.onConnected = [this, idx] { sendLivenessPing(idx); };
        b.conn.onFrame = [this, idx](Frame &&frame) {
            handleBackendFrame(idx, std::move(frame));
        };
        tryConnect(i);
    }

    auto last_tick = std::chrono::steady_clock::now();
    auto last_ping = last_tick;

    while (!exiting_.load()) {
        if (listen_backoff_ == 0) {
            loop_.set(listen_fd_, EventLoop::kRead, kListenKey);
        } else {
            loop_.remove(listen_fd_);
            --listen_backoff_;
        }

        // Close what is closing, flushed, and owed nothing (a client
        // that pipelined SUBMITs and half-closed must survive until
        // its responses relay).
        for (auto it = closing_conns_.begin();
             it != closing_conns_.end();) {
            auto cit = conns_.find(*it);
            if (cit == conns_.end()) {
                it = closing_conns_.erase(it);
                continue;
            }
            ClientConn &c = *cit->second;
            if (c.outoff >= c.outbuf.size() && !clientOwedWork(*it)) {
                std::uint64_t id = *it;
                ++it;
                closeClientConn(id); // erases from closing_conns_
            } else {
                ++it;
            }
        }

        loop_.wait(kWaitTimeoutMs);

        const auto now = std::chrono::steady_clock::now();
        const int elapsed_ms = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - last_tick)
                .count());
        last_tick = now;
        if (now - last_ping >=
            std::chrono::milliseconds(opts_.pingIntervalMs)) {
            last_ping = now;
            sendPings();
        }
        tryReconnects(elapsed_ms);

        for (const EventLoop::Ready &ev : loop_.ready()) {
            if (ev.key == kWakeKey) {
                std::uint8_t drain[256];
                while (::read(wake_pipe_[0], drain, sizeof(drain)) >
                       0) {
                }
                continue;
            }
            if (ev.key == kListenKey) {
                acceptReady();
                continue;
            }
            if (ev.key >= kBackendKeyBase &&
                ev.key < kBackendKeyBase + backends_.size()) {
                const std::size_t idx = static_cast<std::size_t>(
                    ev.key - kBackendKeyBase);
                Backend &b = *backends_[idx];
                const int fd = b.conn.fd();
                if (fd < 0)
                    continue; // went down earlier in this batch
                b.conn.handleReady(ev);
                if (b.conn.state() == AsyncClient::State::Closed) {
                    loop_.remove(fd);
                    backendDown(idx, b.conn.lastError());
                } else {
                    updateBackendInterest(idx);
                }
                continue;
            }
            const std::uint64_t conn_id = ev.key;
            auto it = conns_.find(conn_id);
            if (it == conns_.end())
                continue; // closed earlier in this batch
            ClientConn &conn = *it->second;
            if (ev.error) {
                closeClientConn(conn_id);
                continue;
            }
            bool alive = true;
            if (ev.writable)
                alive = flushClient(conn);
            if (alive && (ev.readable || ev.hangup))
                alive = readReady(conn_id, conn);
            if (!alive) {
                closeClientConn(conn_id);
                continue;
            }
            updateClientInterest(conn_id, conn);
            if (conn.closing)
                closing_conns_.insert(conn_id);
        }
    }

    // Teardown: drop every socket. In-flight requests die with their
    // connections (stop() is not a graceful drain; see gateway.hh).
    while (!conns_.empty())
        closeClientConn(conns_.begin()->first);
    for (auto &b : backends_) {
        if (b->conn.fd() >= 0)
            loop_.remove(b->conn.fd());
        b->conn.close();
        b->routable = false;
    }
    ring_.reset();
    ring_map_.clear();
    routable_count_.store(0);
}

//----------------------------------------------------------------------
// The admin plane.
//----------------------------------------------------------------------

HealthReport
Gateway::evaluateHealth() const
{
    HealthInputs in;
    // "Serving" for a gateway means the front door is open AND at
    // least one backend can take traffic.
    in.serving = running_.load() && routable_count_.load() > 0;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        in.protocolErrors = stats_.errorsReturned;
    }
    if (recorder_)
        in.p99Micros =
            recorder_->latestValue("gateway_route_micros:p99");
    in.nowSeconds = monotonicSeconds();
    return health_->evaluate(in);
}

HealthReport
Gateway::healthReport() const
{
    if (!health_) {
        HealthReport report;
        report.state = HealthState::Ok;
        report.live = true;
        report.ready = running_.load() && routable_count_.load() > 0;
        return report;
    }
    return evaluateHealth();
}

bool
Gateway::gatherTracesForAdmin(std::vector<RequestTrace> *out,
                              std::uint64_t *total) const
{
    // Round-trip a TRACES frame through our own front door: the IO
    // thread answers it with the gateway's rings plus a scatter-
    // gather over every routable backend — exactly what a wire
    // client would see. The admin worker thread blocks here; the IO
    // thread does the serving, so there is no self-deadlock.
    NetClient client(opts_.maxPayloadBytes);
    if (!client.connect("127.0.0.1", port_))
        return false;
    return client.traces(out, total);
}

void
Gateway::registerAdminRoutes(HttpAdminServer &admin)
{
    admin.addHandler("/", [](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "text/html; charset=utf-8";
        resp.body =
            "<!doctype html><title>sap gateway admin</title>"
            "<h1>sap gateway admin</h1><ul>"
            "<li><a href=\"/metrics\">/metrics</a> — Prometheus "
            "text exposition</li>"
            "<li><a href=\"/healthz\">/healthz</a> — liveness "
            "(200/503)</li>"
            "<li><a href=\"/readyz\">/readyz</a> — readiness "
            "(200/503)</li>"
            "<li><a href=\"/tracez\">/tracez</a> — stitched "
            "cross-tier traces (<a href=\"/tracez?format=chrome\">"
            "Perfetto format</a>)</li>"
            "<li><a href=\"/varz\">/varz</a> — full metrics "
            "snapshot as JSON</li>"
            "<li><a href=\"/timeseriesz\">/timeseriesz</a> — "
            "flight-recorder time series</li>"
            "</ul>";
        return resp;
    });
    admin.addHandler("/metrics", [this](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = renderPrometheus(metricsSnapshot());
        return resp;
    });
    admin.addHandler("/varz", [this](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = renderMetricsJson(metricsSnapshot());
        return resp;
    });
    admin.addHandler("/healthz", [this](const HttpRequest &) {
        const HealthReport report = evaluateHealth();
        HttpResponse resp;
        resp.status = report.live ? 200 : 503;
        resp.body = std::string(healthStateName(report.state));
        if (!report.reason.empty())
            resp.body += ": " + report.reason;
        resp.body += "\n";
        return resp;
    });
    admin.addHandler("/readyz", [this](const HttpRequest &) {
        const HealthReport report = evaluateHealth();
        HttpResponse resp;
        resp.status = report.ready ? 200 : 503;
        resp.body = std::string(report.ready ? "ready" : "not ready");
        if (!report.reason.empty())
            resp.body += ": " + report.reason;
        resp.body += "\n";
        return resp;
    });
    admin.addHandler("/tracez", [this](const HttpRequest &req) {
        HttpResponse resp;
        resp.contentType = "application/json";
        std::uint64_t min_us = 0;
        std::string kind, parse_err;
        if (!parseTraceQuery(req.query, &min_us, &kind, &parse_err)) {
            resp.status = 400;
            resp.contentType = "text/plain; charset=utf-8";
            resp.body = parse_err + "\n";
            return resp;
        }
        std::vector<RequestTrace> traces;
        std::uint64_t total = 0;
        if (!gatherTracesForAdmin(&traces, &total)) {
            // Degraded: the gateway-only view still serves.
            traces = collector_.snapshot();
            total = collector_.totalCommitted();
        }
        traces = filterTraces(std::move(traces), min_us, kind);
        auto it = req.query.find("format");
        if (it != req.query.end() && it->second == "chrome") {
            // The multi-process view: pid 2 = gateway lane, pid 1 =
            // backend lanes, joined by trace id in args.
            resp.body = toChromeTraceJson(traces);
            resp.extraHeaders.emplace_back(
                "Content-Disposition",
                "attachment; filename=\"sap_gateway_trace.json\"");
        } else {
            resp.body = toStitchedTracezJson(
                stitchTraces(std::move(traces)), total);
        }
        return resp;
    });
    admin.addHandler("/timeseriesz", [this](const HttpRequest &) {
        HttpResponse resp;
        resp.contentType = "application/json";
        resp.body = toTimeseriesJson(recorder_->snapshot());
        return resp;
    });
}

//----------------------------------------------------------------------
// The /healthz prober.
//----------------------------------------------------------------------

bool
probeHealthz(const std::string &host, std::uint16_t admin_port,
             int timeout_ms)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(admin_port);
    const std::string node = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1)
        return false;
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0 &&
        errno != EINPROGRESS) {
        ::close(fd);
        return false;
    }
    struct pollfd pfd = {fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) != 1) {
        ::close(fd);
        return false;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
        ::close(fd);
        return false;
    }

    const std::string request = "GET /healthz HTTP/1.1\r\nHost: " +
                                node + "\r\nConnection: close\r\n\r\n";
    std::size_t off = 0;
    while (off < request.size()) {
        ssize_t n = ::send(fd, request.data() + off,
                           request.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
            pfd.events = POLLOUT;
            if (::poll(&pfd, 1, timeout_ms) != 1) {
                ::close(fd);
                return false;
            }
            continue;
        }
        ::close(fd);
        return false;
    }

    // The verdict is in the status line; read until it is complete.
    std::string head;
    char buf[512];
    for (;;) {
        pfd.events = POLLIN;
        if (::poll(&pfd, 1, timeout_ms) != 1)
            break;
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            head.append(buf, static_cast<std::size_t>(n));
            if (head.find("\r\n") != std::string::npos)
                break;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    ::close(fd);
    // "HTTP/1.1 200 OK" — Ok and Degraded both answer 200; only
    // Unhealthy (503) pulls the backend (obs/health.hh).
    return head.size() >= 12 && head.compare(9, 3, "200") == 0;
}

void
Gateway::proberLoop()
{
    const int interval = opts_.healthzIntervalMs;
    while (!exiting_.load()) {
        for (auto &b : backends_) {
            if (exiting_.load())
                return;
            if (b->addr.adminPort == 0)
                continue;
            b->adminHealthy.store(probeHealthz(
                b->addr.host, b->addr.adminPort, interval));
        }
        // Sleep in small slices so stop() never waits a full period.
        for (int slept = 0; slept < interval && !exiting_.load();
             slept += 10)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
}

} // namespace sap
