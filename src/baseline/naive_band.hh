/**
 * @file
 * Baseline: naive dense-as-band embedding.
 *
 * A dense n×m matrix has n+m−1 nonzero diagonals, so running it
 * directly on a Kung/Leiserson band array requires an array of size
 * n+m−1 — the array size *grows with the problem*, which is exactly
 * the size-dependence the paper eliminates. For a fixed array of
 * size w this embedding simply does not fit once n+m−1 > w.
 *
 * The module quantifies that: the required array size, the step
 * count of the oversized array, and its PE utilization, compared
 * with DBT on the fixed-w array.
 */

#ifndef SAP_BASELINE_NAIVE_BAND_HH
#define SAP_BASELINE_NAIVE_BAND_HH

#include "analysis/metrics.hh"
#include "base/types.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** Cost model of the naive embedding. */
struct NaiveBandCost
{
    Index arraySize = 0;   ///< PEs required: n + m − 1
    Cycle steps = 0;       ///< measured steps on that array
    double utilization = 0; ///< measured MACs / (A·T)
    bool fitsFixedArray = false; ///< arraySize <= w?
};

/**
 * Run (or cost out) the naive embedding of y = A·x + b.
 *
 * The dense matrix is treated as a band matrix of bandwidth
 * n+m−1 and executed on an (n+m−1)-PE contraflow array via the
 * standard band schedule.
 *
 * @param w The fixed array size being compared against.
 */
NaiveBandCost runNaiveBand(const Dense<Scalar> &a, const Vec<Scalar> &x,
                           const Vec<Scalar> &b, Index w,
                           Vec<Scalar> *y_out = nullptr);

} // namespace sap

#endif // SAP_BASELINE_NAIVE_BAND_HH
