/**
 * @file
 * Baseline: blocked mat-vec WITHOUT the paper's feedback.
 *
 * Each w×w block A_ij is PRT-packed and run through the array as an
 * independent band problem; partial results are accumulated on the
 * host ("calculation external to the array", which the paper's
 * feedback eliminates). Consecutive block problems cannot overlap in
 * the array — a fresh problem's y stream would collide with the
 * previous one's — so each block pays the full pipeline fill/drain,
 * and the host performs n̄·m̄·w additional adds.
 *
 * This is the natural straw-man the paper improves on: same
 * triangular packing, no inter-block chaining.
 */

#ifndef SAP_BASELINE_BLOCK_NO_FEEDBACK_HH
#define SAP_BASELINE_BLOCK_NO_FEEDBACK_HH

#include <vector>

#include "analysis/metrics.hh"
#include "dbt/matvec_plan.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** Result of the no-feedback blocked execution. */
struct BlockNoFeedbackResult
{
    Vec<Scalar> y;        ///< y = A·x + b
    RunStats stats;       ///< combined over all block runs
    Index hostAdds = 0;   ///< accumulations done outside the array
    Cycle perBlockCycles = 0; ///< array steps per block problem
};

/**
 * Reusable no-feedback plan for one (A, w) pair: the n̄·m̄ per-block
 * PRT plans are built once, and any number of (x, b) operand pairs
 * stream through them — the baseline's analogue of the prepared-
 * plan protocol, so the registry-wrapped engine ("no-feedback")
 * amortizes exactly like the paper's topologies even though each
 * block still pays the full fill/drain (4w − 3 cycles) and the host
 * performs n̄·m̄·w + n accumulations per request.
 *
 * Thread-compatibility: const member functions are safe to call
 * concurrently (each run builds its own simulators).
 */
class BlockNoFeedbackPlan
{
  public:
    /**
     * @param a The dense matrix A (any shape).
     * @param w The fixed systolic array size.
     */
    BlockNoFeedbackPlan(const Dense<Scalar> &a, Index w);

    /** Execute y = A·x + b, one isolated array run per block. */
    BlockNoFeedbackResult run(const Vec<Scalar> &x,
                              const Vec<Scalar> &b) const;

    /**
     * Semantics replay of run() (src/semantics/): blocks replayed
     * through the mat-vec semantics kernel in the same order; y
     * bit-identical, stats from analysis/formulas.hh.
     */
    BlockNoFeedbackResult runSemantics(const Vec<Scalar> &x,
                                       const Vec<Scalar> &b) const;

  private:
    Index w_;
    Index rows_, cols_;
    Index nbar_, mbar_;
    /** Row-major (i·m̄ + j) per-block plans. */
    std::vector<MatVecPlan> blocks_;
};

/**
 * Solve y = A·x + b by running every w×w block separately and
 * summing on the host (one-shot convenience over
 * BlockNoFeedbackPlan).
 */
BlockNoFeedbackResult runBlockNoFeedback(const Dense<Scalar> &a,
                                         const Vec<Scalar> &x,
                                         const Vec<Scalar> &b, Index w);

} // namespace sap

#endif // SAP_BASELINE_BLOCK_NO_FEEDBACK_HH
