/**
 * @file
 * Baseline: blocked mat-vec WITHOUT the paper's feedback.
 *
 * Each w×w block A_ij is PRT-packed and run through the array as an
 * independent band problem; partial results are accumulated on the
 * host ("calculation external to the array", which the paper's
 * feedback eliminates). Consecutive block problems cannot overlap in
 * the array — a fresh problem's y stream would collide with the
 * previous one's — so each block pays the full pipeline fill/drain,
 * and the host performs n̄·m̄·w additional adds.
 *
 * This is the natural straw-man the paper improves on: same
 * triangular packing, no inter-block chaining.
 */

#ifndef SAP_BASELINE_BLOCK_NO_FEEDBACK_HH
#define SAP_BASELINE_BLOCK_NO_FEEDBACK_HH

#include "analysis/metrics.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** Result of the no-feedback blocked execution. */
struct BlockNoFeedbackResult
{
    Vec<Scalar> y;        ///< y = A·x + b
    RunStats stats;       ///< combined over all block runs
    Index hostAdds = 0;   ///< accumulations done outside the array
    Cycle perBlockCycles = 0; ///< array steps per block problem
};

/**
 * Solve y = A·x + b by running every w×w block separately and
 * summing on the host.
 */
BlockNoFeedbackResult runBlockNoFeedback(const Dense<Scalar> &a,
                                         const Vec<Scalar> &x,
                                         const Vec<Scalar> &b, Index w);

} // namespace sap

#endif // SAP_BASELINE_BLOCK_NO_FEEDBACK_HH
