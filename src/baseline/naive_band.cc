#include "baseline/naive_band.hh"

#include "base/logging.hh"
#include "mat/band.hh"
#include "sim/linear_driver.hh"

namespace sap {

NaiveBandCost
runNaiveBand(const Dense<Scalar> &a, const Vec<Scalar> &x,
             const Vec<Scalar> &b, Index w, Vec<Scalar> *y_out)
{
    const Index n = a.rows();
    const Index m = a.cols();
    SAP_ASSERT(x.size() == m && b.size() == n, "shape mismatch");

    NaiveBandCost cost;
    cost.arraySize = n + m - 1;
    cost.fitsFixedArray = cost.arraySize <= w;

    // Embed the dense matrix as an upper band of bandwidth n+m−1:
    // band row i, band column i+d holds A(i, i+d−(n−1)) — i.e. the
    // matrix is skewed so its leftmost diagonal becomes offset 0.
    const Index bw = cost.arraySize;
    Band<Scalar> band(n, n + bw - 1, 0, bw - 1);
    for (Index i = 0; i < n; ++i) {
        for (Index d = 0; d < bw; ++d) {
            Index j = i + d - (n - 1);
            if (j >= 0 && j < m)
                band.ref(i, i + d) = a(i, j);
        }
    }
    Vec<Scalar> xbar(n + bw - 1);
    for (Index col = 0; col < n + bw - 1; ++col) {
        Index j = col - (n - 1);
        if (j >= 0 && j < m)
            xbar[col] = x[j];
    }

    BandMatVecSpec spec;
    spec.abar = &band;
    spec.xbar = xbar;
    spec.externalB = b;
    spec.bIsExternal.assign(static_cast<std::size_t>(n), 1);
    spec.yIsFinal.assign(static_cast<std::size_t>(n), 1);

    LinearRunResult r = runBandMatVec(spec);
    cost.steps = r.stats.cycles;
    // Only the n·m genuine products count as useful work; the
    // zero-padded band slots are waste, which is the point of the
    // comparison.
    cost.utilization =
        static_cast<double>(n * m) /
        (static_cast<double>(cost.arraySize) *
         static_cast<double>(cost.steps));
    if (y_out)
        *y_out = r.ybar;
    return cost;
}

} // namespace sap
