/**
 * @file
 * The PRT transformation of Priester, Whitehouse, Bromley and Clary
 * ("Signal Processing with Systolic Arrays", ICPP 1981, the paper's
 * reference /6/).
 *
 * PRT packs one dense w×w matrix into a bandwidth-w band by folding
 * the strictly lower triangle next to the upper triangle — which the
 * paper identifies as exactly the n̄ = m̄ = 1 special case of
 * DBT-by-rows. Compared against the naive dense-as-band embedding it
 * halves the required array size (w instead of 2w−1) with no time
 * overhead.
 *
 * This module provides PRT as an independent entry point (prior
 * art baseline) plus the check that it coincides with DBT.
 */

#ifndef SAP_BASELINE_PRT_HH
#define SAP_BASELINE_PRT_HH

#include "dbt/matvec_plan.hh"
#include "mat/dense.hh"

namespace sap {

/** Result of a PRT execution. */
struct PrtResult
{
    Vec<Scalar> y;   ///< y = A·x + b
    RunStats stats;  ///< measured on the w-PE array
};

/**
 * Solve y = A·x + b for a single dense w×w matrix using the PRT
 * band packing on a w-PE linear array.
 *
 * @pre A is square and w = A.rows() (PRT has no blocking; that is
 *      the paper's generalization).
 */
PrtResult runPrt(const Dense<Scalar> &a, const Vec<Scalar> &x,
                 const Vec<Scalar> &b);

/**
 * Array size required by the naive dense-as-band embedding of a
 * w×w dense matrix: 2w−1 (every diagonal of A becomes a band
 * diagonal). PRT's w is the "50% size reduction" of the paper.
 */
Index naiveDenseArraySize(Index w);

} // namespace sap

#endif // SAP_BASELINE_PRT_HH
