#include "baseline/block_no_feedback.hh"

#include "base/logging.hh"
#include "base/math_util.hh"
#include "mat/block.hh"

namespace sap {

BlockNoFeedbackPlan::BlockNoFeedbackPlan(const Dense<Scalar> &a,
                                         Index w)
    : w_(w), rows_(a.rows()), cols_(a.cols())
{
    BlockPartition<Scalar> part(a, w);
    nbar_ = part.blockRows();
    mbar_ = part.blockCols();
    blocks_.reserve(static_cast<std::size_t>(nbar_ * mbar_));
    for (Index i = 0; i < nbar_; ++i)
        for (Index j = 0; j < mbar_; ++j)
            blocks_.emplace_back(part.block(i, j), w);
}

BlockNoFeedbackResult
BlockNoFeedbackPlan::run(const Vec<Scalar> &x,
                         const Vec<Scalar> &b) const
{
    SAP_ASSERT(x.size() == cols_ && b.size() == rows_,
               "shape mismatch");
    Vec<Scalar> xp = x.paddedTo(mbar_ * w_);

    Vec<Scalar> y_acc(nbar_ * w_);
    BlockNoFeedbackResult res;
    res.stats.peCount = w_;

    for (Index i = 0; i < nbar_; ++i) {
        for (Index j = 0; j < mbar_; ++j) {
            // Run block (i, j) as an isolated PRT problem with a
            // zero additive vector; accumulate on the host.
            const MatVecPlan &plan =
                blocks_[static_cast<std::size_t>(i * mbar_ + j)];
            Vec<Scalar> xb = xp.slice(j * w_, w_);
            MatVecPlanResult r = plan.run(xb, Vec<Scalar>(w_));
            for (Index t = 0; t < w_; ++t) {
                y_acc[i * w_ + t] += r.y[t];
                ++res.hostAdds;
            }
            res.perBlockCycles = r.stats.cycles;
            // Blocks run back to back: full fill + drain each time.
            res.stats.cycles += r.stats.cycles;
            res.stats.usefulMacs += r.stats.usefulMacs;
        }
    }

    // Fold in b on the host as well (no injection path).
    res.y = Vec<Scalar>(rows_);
    for (Index i = 0; i < rows_; ++i) {
        res.y[i] = y_acc[i] + b[i];
        ++res.hostAdds;
    }
    return res;
}

BlockNoFeedbackResult
runBlockNoFeedback(const Dense<Scalar> &a, const Vec<Scalar> &x,
                   const Vec<Scalar> &b, Index w)
{
    return BlockNoFeedbackPlan(a, w).run(x, b);
}

} // namespace sap
