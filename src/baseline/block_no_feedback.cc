#include "baseline/block_no_feedback.hh"

#include "base/logging.hh"
#include "base/math_util.hh"
#include "dbt/matvec_plan.hh"
#include "mat/block.hh"

namespace sap {

BlockNoFeedbackResult
runBlockNoFeedback(const Dense<Scalar> &a, const Vec<Scalar> &x,
                   const Vec<Scalar> &b, Index w)
{
    SAP_ASSERT(x.size() == a.cols() && b.size() == a.rows(),
               "shape mismatch");
    BlockPartition<Scalar> part(a, w);
    const Index nbar = part.blockRows();
    const Index mbar = part.blockCols();
    Vec<Scalar> xp = x.paddedTo(mbar * w);

    Vec<Scalar> y_acc(nbar * w);
    BlockNoFeedbackResult res;
    res.stats.peCount = w;

    for (Index i = 0; i < nbar; ++i) {
        for (Index j = 0; j < mbar; ++j) {
            // Run block (i, j) as an isolated PRT problem with a
            // zero additive vector; accumulate on the host.
            MatVecPlan plan(part.block(i, j), w);
            Vec<Scalar> xb = xp.slice(j * w, w);
            MatVecPlanResult r = plan.run(xb, Vec<Scalar>(w));
            for (Index t = 0; t < w; ++t) {
                y_acc[i * w + t] += r.y[t];
                ++res.hostAdds;
            }
            res.perBlockCycles = r.stats.cycles;
            // Blocks run back to back: full fill + drain each time.
            res.stats.cycles += r.stats.cycles;
            res.stats.usefulMacs += r.stats.usefulMacs;
        }
    }

    // Fold in b on the host as well (no injection path).
    res.y = Vec<Scalar>(a.rows());
    for (Index i = 0; i < a.rows(); ++i) {
        res.y[i] = y_acc[i] + b[i];
        ++res.hostAdds;
    }
    return res;
}

} // namespace sap
