#include "baseline/prt.hh"

#include "base/logging.hh"

namespace sap {

PrtResult
runPrt(const Dense<Scalar> &a, const Vec<Scalar> &x, const Vec<Scalar> &b)
{
    SAP_ASSERT(a.rows() == a.cols(),
               "PRT applies to square matrices only");
    // PRT == DBT-by-rows with n̄ = m̄ = 1 (validated in tests): one
    // (U00, L00) pair, the trailing x^∂ replicating the leading
    // elements of x, all b external, all y final.
    MatVecPlan plan(a, a.rows());
    SAP_ASSERT(plan.dims().nbar == 1 && plan.dims().mbar == 1,
               "PRT precondition violated");
    MatVecPlanResult r = plan.run(x, b);

    PrtResult out;
    out.y = r.y;
    out.stats = r.stats;
    return out;
}

Index
naiveDenseArraySize(Index w)
{
    return 2 * w - 1;
}

} // namespace sap
