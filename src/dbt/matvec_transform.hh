/**
 * @file
 * DBT-by-rows: the paper's Dense-to-Band transformation by
 * Triangular block partitioning for matrix-vector multiplication
 * (§2).
 *
 * Given the original problem y = A·x + b with A of shape (n, m) and
 * a target array size w, the transformation produces:
 *
 *  - Ā: an upper-band matrix of bandwidth exactly w whose band is
 *    completely filled with (copies of) the triangular halves of the
 *    w-by-w blocks of A:
 *        Ū_k = U_{r,s},  r = ⌊k/m̄⌋, s = k mod m̄
 *        L̄_k = L_{r,s'}, s' = (k mod m̄ + 1) mod m̄
 *  - x̄: n̄m̄ sub-vectors x_{k mod m̄} plus a final (w−1)-element tail;
 *  - b̄/ȳ schedules describing which band block rows take an external
 *    b sub-vector vs. the fed-back previous partial result, and which
 *    block rows emit a final y sub-vector vs. recirculate.
 *
 * The class also verifies the paper's three structural conditions
 * and the filled-band property.
 */

#ifndef SAP_DBT_MATVEC_TRANSFORM_HH
#define SAP_DBT_MATVEC_TRANSFORM_HH

#include <vector>

#include "base/types.hh"
#include "mat/band.hh"
#include "mat/block.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** Problem dimensions of a DBT mat-vec instance. */
struct MatVecDims
{
    Index n;    ///< original rows of A (= length of y, b)
    Index m;    ///< original cols of A (= length of x)
    Index w;    ///< array size = block size = bandwidth
    Index nbar; ///< ⌈n/w⌉
    Index mbar; ///< ⌈m/w⌉

    /** Number of transformed band block rows, n̄·m̄. */
    Index blockCount() const { return nbar * mbar; }
    /** Scalar rows of Ā (= length of ȳ and b̄). */
    Index barRows() const { return blockCount() * w; }
    /** Scalar cols of Ā (= length of x̄) = n̄m̄w + w − 1. */
    Index barCols() const { return blockCount() * w + w - 1; }
};

/** Where a b̄ sub-vector comes from. */
enum class BSource
{
    External, ///< fresh b sub-vector from the host (k mod m̄ == 0)
    Feedback, ///< previous partial result ȳ_{k−1} through the loop
};

/** Where a ȳ sub-vector goes. */
enum class YSink
{
    Emit,        ///< final result sub-vector ((k+1) mod m̄ == 0)
    Recirculate, ///< partial result, re-enters as b̄_{k+1}
};

/**
 * Result of applying DBT-by-rows to a dense matrix.
 *
 * Owns the transformed band matrix plus the provenance and feedback
 * schedules the drivers and the result extractor need.
 */
class MatVecTransform
{
  public:
    /** Provenance of band block row k. */
    struct BlockPair
    {
        Index uRow, uCol; ///< Ū_k = U_{uRow,uCol}
        Index lRow, lCol; ///< L̄_k = L_{lRow,lCol}
    };

    /**
     * Apply DBT-by-rows.
     *
     * @param a Original dense matrix (any shape >= 1x1).
     * @param w Target array size (>= 1).
     */
    MatVecTransform(const Dense<Scalar> &a, Index w);

    /** Dimensions record. */
    const MatVecDims &dims() const { return dims_; }

    /** The transformed band matrix Ā (upper band, bandwidth w). */
    const Band<Scalar> &abar() const { return abar_; }

    /** Block provenance for band block row k. */
    const BlockPair &pair(Index k) const { return pairs_.at(k); }

    /** All block pairs, in band order. */
    const std::vector<BlockPair> &pairs() const { return pairs_; }

    /** b̄ source for band block row k (paper rule: k mod m̄). */
    BSource bSourceOf(Index k) const;

    /** ȳ sink for band block row k (paper rule: (k+1) mod m̄). */
    YSink ySinkOf(Index k) const;

    /**
     * Build the transformed vector x̄ from the original x
     * (length m; padded internally).
     *
     * Layout: n̄m̄ blocks of x_{k mod m̄} followed by the (w−1)-element
     * tail x^∂ (leading elements of x_0).
     */
    Vec<Scalar> transformX(const Vec<Scalar> &x) const;

    /**
     * External b̄ scalar for transformed scalar row i.
     *
     * @pre scalarIsExternalB(i) is true.
     */
    Scalar externalB(const Vec<Scalar> &b, Index i) const;

    /** True if transformed scalar row i takes a fresh b element. */
    bool scalarIsExternalB(Index i) const;

    /** True if transformed scalar row i emits a final y element. */
    bool scalarIsFinalY(Index i) const;

    /**
     * Original y index for a final transformed scalar row i.
     *
     * @pre scalarIsFinalY(i). May point into the padded region; the
     * extractor drops padded entries.
     */
    Index finalYIndex(Index i) const;

    /**
     * Gather the final y (length n) from the full transformed ȳ
     * (length barRows()).
     */
    Vec<Scalar> extractY(const Vec<Scalar> &ybar) const;

    /**
     * Check the paper's conditions 1-3 on the block sequence plus
     * the filled-band property (the latter only when all blocks of
     * the padded matrix are fully nonzero).
     *
     * @param check_filled Also require a completely filled band.
     * @return true if all structural conditions hold.
     */
    bool validate(bool check_filled) const;

  private:
    MatVecDims dims_;
    BlockPartition<Scalar> partition_;
    std::vector<BlockPair> pairs_;
    Band<Scalar> abar_;
};

} // namespace sap

#endif // SAP_DBT_MATVEC_TRANSFORM_HH
