/**
 * @file
 * Partitioning of a transformed problem into two disjoint
 * sub-problems (the dotted line in the paper's Fig. 2.b).
 *
 * Feedback chains run along the band block rows of one original
 * block row r (k = r·m̄ .. r·m̄+m̄−1), so any cut at a multiple of m̄
 * yields two independent band problems that can be interleaved on
 * alternate cycles of the same array.
 */

#ifndef SAP_DBT_INTERLEAVE_HH
#define SAP_DBT_INTERLEAVE_HH

#include "dbt/matvec_transform.hh"
#include "sim/linear_driver.hh"

namespace sap {

/**
 * Owned storage for the two sub-problems of a split transformed
 * problem. Non-copyable: the specs returned by first()/second()
 * point into this object.
 */
class SplitProblem
{
  public:
    /**
     * Split the transformed problem after original block row
     * ⌈n̄/2⌉ (the paper's optimal balanced cut).
     *
     * @param t The DBT transform of A.
     * @param x Original input vector (length m).
     * @param b Original additive vector (length n).
     * @pre t.dims().nbar >= 2.
     */
    SplitProblem(const MatVecTransform &t, const Vec<Scalar> &x,
                 const Vec<Scalar> &b);

    SplitProblem(const SplitProblem &) = delete;
    SplitProblem &operator=(const SplitProblem &) = delete;

    /** Array-ready spec of the first half (band rows [0, cut)). */
    BandMatVecSpec first() const;
    /** Array-ready spec of the second half. */
    BandMatVecSpec second() const;

    /** Block row count of the first half (multiple of m̄). */
    Index cutBlocks() const { return cut_blocks_; }

    /**
     * Merge the two half results back into the full ȳ ordering and
     * extract the final y (length n).
     */
    Vec<Scalar> extractY(const Vec<Scalar> &ybar_first,
                         const Vec<Scalar> &ybar_second) const;

  private:
    /** Build the band slice for block rows [k0, k1). */
    void buildHalf(Index k0, Index k1, Band<Scalar> &band,
                   BandMatVecSpec &spec, const Vec<Scalar> &x,
                   const Vec<Scalar> &b);

    const MatVecTransform &t_;
    Index cut_blocks_;
    Band<Scalar> band_first_;
    Band<Scalar> band_second_;
    BandMatVecSpec spec_first_;
    BandMatVecSpec spec_second_;
};

} // namespace sap

#endif // SAP_DBT_INTERLEAVE_HH
