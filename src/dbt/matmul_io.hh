/**
 * @file
 * The paper's Appendix: composition of the hexagonal array input
 * band I from the data matrix E and the fed-back output band O, and
 * extraction of the final C blocks from O.
 *
 * Band notation (Fig. 6): the I/O bands are 2w−1 wide; block row k
 * holds, left to right:
 *
 *   U_{k,0}  strictly-upper-shaped block at block column k−1
 *   L_{k,0}  strictly lower part of the diagonal block (k,k)
 *   D_k      diagonal of the diagonal block
 *   U_{k,1}  strictly upper part of the diagonal block
 *   L_{k,1}  strictly-lower-shaped block at block column k+1
 *
 * Composition rules (cleaned from the scanned text; `K = p̄n̄m̄`,
 * indices r = ⌊(k mod n̄p̄)/p̄⌋, c = ⌊k/(n̄p̄)⌋):
 *
 *   U^I_{k,0} = U^O_{k−p̄(n̄−1)−1, 1}  if k mod p̄n̄ == 0   (irregular)
 *             = U^E_{r, c}            if k mod p̄ == 0
 *             = U^O_{k−1, 1}          otherwise
 *   U^I_{k,1} = U^E_{0, c}            if k mod p̄n̄ == 0
 *             = U^O_{k, 0}            otherwise
 *   D^I_k     = D^E_{r, c}            if k mod p̄ == 0
 *             = D^O_{k−1}             otherwise
 *   L^I_{k,0} = L^O_{k−p̄(n̄−1)−1, 1}  if (k+p̄) mod p̄n̄ == 0
 *                                       and k != p̄(n̄−1)  (irregular)
 *             = L^E_{r, c}            if k mod p̄ == 0
 *             = L^O_{k−1, 1}          otherwise
 *   L^I_{k,1} = L^O_{p̄n̄−1, 0}        if k == K−1         (irregular)
 *             = L^E_{n̄−1, (k+1)/p̄n̄}  if (k+1) mod p̄n̄ == 0
 *             = L^O_{k, 0}            otherwise
 *
 * Extraction:
 *
 *   U^C_{i,j} = U^O_{(j+1)p̄n̄, 0}           if i == 0
 *             = U^O_{(i+jn̄+1)p̄−1, 1}       otherwise
 *   D^C_{i,j} = D^O_{(i+jn̄+1)p̄−1}
 *   L^C_{i,j} = L^O_{K−1, 1}               if (i,j) == (n̄−1, 0)
 *             = L^O_{(j+1)p̄n̄−1, 0}         if i == n̄−1, j > 0
 *             = L^O_{(i+jn̄+1)p̄−1, 1}       otherwise
 *
 * E-blocks referenced out of range (only possible at the tail row
 * k == K) denote zero inputs whose outputs are discarded.
 */

#ifndef SAP_DBT_MATMUL_IO_HH
#define SAP_DBT_MATMUL_IO_HH

#include "base/types.hh"
#include "dbt/matmul_transform.hh"

namespace sap {

/** The five part classes of an I/O band block row (Fig. 6). */
enum class BandPart
{
    USub,   ///< U_{k,0}: strictly-upper block at block column k−1
    LDiag,  ///< L_{k,0}: strictly lower part of the diagonal block
    Diag,   ///< D_k: diagonal of the diagonal block
    UDiag,  ///< U_{k,1}: strictly upper part of the diagonal block
    LSuper, ///< L_{k,1}: strictly-lower block at block column k+1
};

/** Printable part name ("U_{k,0}" style). */
std::string bandPartName(BandPart part);

/** Where one I-band block comes from. */
struct IoSource
{
    enum class Kind
    {
        Zero,     ///< no input (tail corner cases)
        FromE,    ///< block (eRow, eCol) of the data matrix E
        FromO,    ///< fed-back output block (oRow, oPart)
    };

    Kind kind = Kind::Zero;
    Index eRow = -1;     ///< E block row (FromE)
    Index eCol = -1;     ///< E block column (FromE)
    Index oRow = -1;     ///< O band block row (FromO)
    BandPart oPart = BandPart::Diag; ///< O part class (FromO)
    bool irregular = false; ///< true for the long-delay feedbacks
};

/** Where one final C block part is read from. */
struct ExtractSource
{
    Index oRow = -1;
    BandPart oPart = BandPart::Diag;
};

/**
 * Implements the Appendix rules for a given problem shape.
 *
 * The composer is pure index arithmetic: it never touches values.
 * Executors (block-level and cycle-level) query it to route data.
 */
class IoComposer
{
  public:
    explicit IoComposer(const MatMulDims &dims);

    /**
     * Source of I-band part @p part at block row @p k.
     *
     * @pre k in [0, K] (K = tail row); USub requires k >= 1,
     *      LSuper requires k <= K−1.
     */
    IoSource inputSource(Index k, BandPart part) const;

    /** Extraction location of C block (i, j) part @p part. */
    ExtractSource extractSource(Index i, Index j, BandPart part) const;

    /**
     * True if the O-band part (k, part) is consumed by some later
     * I-band slot (i.e. it recirculates rather than being final or
     * discarded).
     */
    bool outputIsRecirculated(Index k, BandPart part) const;

    /**
     * Verify global consistency: every O block is consumed at most
     * once, every C block is extracted from a distinct O slot, and
     * every E block is injected exactly once per part class.
     */
    bool validate() const;

  private:
    MatMulDims dims_;
};

} // namespace sap

#endif // SAP_DBT_MATMUL_IO_HH
