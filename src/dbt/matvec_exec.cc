#include "dbt/matvec_exec.hh"

#include "base/logging.hh"

namespace sap {

MatVecExecResult
execTransformed(const MatVecTransform &t, const Vec<Scalar> &x,
                const Vec<Scalar> &b)
{
    const MatVecDims &d = t.dims();
    const Band<Scalar> &abar = t.abar();
    Vec<Scalar> xbar = t.transformX(x);

    Vec<Scalar> ybar(d.barRows());
    for (Index i = 0; i < d.barRows(); ++i) {
        // b̄_i: external injection or feedback of ȳ_{i−w} (the scalar
        // w rows earlier — same in-block offset, previous block row).
        Scalar acc;
        if (t.scalarIsExternalB(i)) {
            acc = t.externalB(b, i);
        } else {
            SAP_ASSERT(i - d.w >= 0, "feedback before first block");
            acc = ybar[i - d.w];
        }
        for (Index off = 0; off <= d.w - 1; ++off) {
            Index j = i + off;
            if (j < d.barCols())
                acc += abar.at(i, j) * xbar[j];
        }
        ybar[i] = acc;
    }

    return {ybar, t.extractY(ybar)};
}

} // namespace sap
