/**
 * @file
 * Sparsity-aware DBT — the extension sketched in the paper's
 * conclusions: "In the case of computing with matrices of a known
 * degree of sparsity, transformation algorithms can be devised …
 * to exclude the need of zero-valued elements sub-matrices. A
 * reduction of computational time would be the consequence."
 *
 * The variant drops every band block row k whose (Ū_k, L̄_k) pair is
 * entirely zero — such a row contributes nothing to any y — and
 * stitches the feedback chain across the gap: the b̄-injection /
 * ȳ-emission flags of the surviving rows are recomputed so partial
 * results still chain within each original block row.
 */

#ifndef SAP_DBT_SPARSE_DBT_HH
#define SAP_DBT_SPARSE_DBT_HH

#include <vector>

#include "dbt/matvec_transform.hh"
#include "sim/linear_driver.hh"

namespace sap {

/**
 * A compressed transformed problem: only the nonzero block rows of
 * the DBT band, with correctly re-stitched feedback scheduling.
 *
 * Non-copyable: specs returned by spec() point into this object.
 */
class SparseDbt
{
  public:
    /**
     * @param a Dense (block-sparse) matrix.
     * @param w Array size.
     */
    SparseDbt(const Dense<Scalar> &a, Index w);

    SparseDbt(const SparseDbt &) = delete;
    SparseDbt &operator=(const SparseDbt &) = delete;

    /** Band block rows kept (out of dims().blockCount()). */
    Index keptBlocks() const { return static_cast<Index>(kept_.size()); }
    /** Band block rows of the dense (non-sparse) transformation. */
    Index denseBlocks() const { return full_.dims().blockCount(); }

    /** Array-ready spec for x and b. */
    BandMatVecSpec spec(const Vec<Scalar> &x, const Vec<Scalar> &b);

    /** Extract y (length n) from the compressed ȳ. */
    Vec<Scalar> extractY(const Vec<Scalar> &ybar) const;

    /** The underlying full transform (for comparison). */
    const MatVecTransform &fullTransform() const { return full_; }

  private:
    MatVecTransform full_;
    std::vector<Index> kept_;    ///< original k per row (−1 = separator)
    std::vector<std::uint8_t> first_in_row_; ///< row takes external b
    std::vector<std::uint8_t> last_in_row_;  ///< row emits final y
    std::vector<Index> x_blocks_; ///< x sub-vector per row
    std::vector<Index> row_r_;    ///< original block row (−1 = none)
    Index tail_x_block_ = 0;      ///< x sub-vector of the band tail
    Band<Scalar> band_;
    Vec<Scalar> xbar_;            ///< rebuilt per spec() call
    Vec<Scalar> b_padded_;        ///< retained for extractY()
};

} // namespace sap

#endif // SAP_DBT_SPARSE_DBT_HH
