#include "dbt/matvec_plan.hh"

#include "base/logging.hh"
#include "dbt/interleave.hh"

namespace sap {

MatVecPlan::MatVecPlan(const Dense<Scalar> &a, Index w)
    : transform_(a, w)
{
    SAP_ASSERT(transform_.validate(/*check_filled=*/false),
               "DBT structural conditions violated");
    asched_ = LinearASchedule::build(transform_.abar());

    const Index rows = dims().barRows();
    b_external_.assign(static_cast<std::size_t>(rows), 0);
    y_final_.assign(static_cast<std::size_t>(rows), 0);
    for (Index i = 0; i < rows; ++i) {
        b_external_[i] = transform_.scalarIsExternalB(i) ? 1 : 0;
        y_final_[i] = transform_.scalarIsFinalY(i) ? 1 : 0;
    }
}

BandMatVecSpec
MatVecPlan::makeSpec(const Vec<Scalar> &x, const Vec<Scalar> &b) const
{
    const MatVecDims &d = dims();
    BandMatVecSpec spec;
    spec.abar = &transform_.abar();
    spec.aSchedule = &asched_;
    spec.xbar = transform_.transformX(x);
    spec.bIsExternal = b_external_;
    spec.yIsFinal = y_final_;
    spec.externalB = Vec<Scalar>(d.barRows());
    for (Index i = 0; i < d.barRows(); ++i) {
        if (b_external_[i])
            spec.externalB[i] = transform_.externalB(b, i);
    }
    return spec;
}

MatVecPlanResult
MatVecPlan::run(const Vec<Scalar> &x, const Vec<Scalar> &b,
                bool record_trace) const
{
    BandMatVecSpec spec = makeSpec(x, b);
    LinearRunResult r = runBandMatVec(spec, record_trace);

    MatVecPlanResult out;
    out.y = transform_.extractY(r.ybar);
    out.stats = r.stats;
    out.observedFeedbackDelay = r.observedFeedbackDelay;
    out.feedbackRegisters = r.feedbackRegisters;
    out.trace = r.trace;
    return out;
}

MatVecPlanResult
MatVecPlan::runOverlapped(const Vec<Scalar> &x, const Vec<Scalar> &b) const
{
    SplitProblem split(transform_, x, b);
    InterleavedRunResult r = runInterleaved(split.first(),
                                            split.second());

    MatVecPlanResult out;
    out.y = split.extractY(r.first.ybar, r.second.ybar);
    out.stats = r.combined;
    out.observedFeedbackDelay = r.first.observedFeedbackDelay;
    out.feedbackRegisters = r.first.feedbackRegisters;
    return out;
}

GroupedRunResult
MatVecPlan::runGroupedPlan(const Vec<Scalar> &x, const Vec<Scalar> &b) const
{
    BandMatVecSpec spec = makeSpec(x, b);
    return runGrouped(spec);
}

TwoProblemResult
runTwoProblems(const MatVecPlan &pa, const Vec<Scalar> &xa,
               const Vec<Scalar> &ba, const MatVecPlan &pb,
               const Vec<Scalar> &xb, const Vec<Scalar> &bb)
{
    BandMatVecSpec sa = pa.makeSpec(xa, ba);
    BandMatVecSpec sb = pb.makeSpec(xb, bb);
    InterleavedRunResult r = runInterleaved(sa, sb);

    TwoProblemResult out;
    out.first.y = pa.transform().extractY(r.first.ybar);
    out.first.stats = r.first.stats;
    out.first.observedFeedbackDelay = r.first.observedFeedbackDelay;
    out.second.y = pb.transform().extractY(r.second.ybar);
    out.second.stats = r.second.stats;
    out.second.observedFeedbackDelay = r.second.observedFeedbackDelay;
    out.combined = r.combined;
    return out;
}

} // namespace sap
