#include "dbt/sparse_dbt.hh"

#include "base/logging.hh"
#include "base/math_util.hh"

namespace sap {

namespace {

/** One row of the compressed band sequence. */
struct SeqRow
{
    Index orig_k = -1;   ///< original band block row (−1 = separator)
    Index orig_r = -1;   ///< original matrix block row it serves
    Index x_block = 0;   ///< which x sub-vector its Ū columns carry
    Index l_x_block = 0; ///< which x sub-vector its L̄ needs
    bool b_external = false;
    bool y_final = false;
};

} // namespace

// Implementation note: the compressed sequence lives in the band and
// the flag vectors; SeqRow is only used transiently during
// construction.

SparseDbt::SparseDbt(const Dense<Scalar> &a, Index w)
    : full_(a, w), band_(0, 0, 0, 0)
{
    const MatVecDims &d = full_.dims();
    const Index mbar = d.mbar;

    // Zero-pair classification of the original band block rows.
    auto pair_is_zero = [&](Index k) {
        const auto &pr = full_.pair(k);
        Dense<Scalar> blk(w, w);
        for (Index i = 0; i < w; ++i) {
            for (Index j = i; j < w; ++j) {
                if (full_.abar().at(k * w + i, k * w + j) != 0)
                    return false;
            }
            for (Index j = 0; j < i; ++j) {
                if (full_.abar().at(k * w + i, (k + 1) * w + j) != 0)
                    return false;
            }
        }
        (void)pr;
        return true;
    };

    // Build the compressed sequence with separators where the
    // x-sharing of adjacent rows would otherwise break.
    std::vector<SeqRow> seq;
    std::vector<std::vector<Index>> rows_of(d.nbar);
    for (Index k = 0; k < d.blockCount(); ++k)
        if (!pair_is_zero(k))
            rows_of[k / mbar].push_back(k);

    auto l_is_zero = [&](Index k) {
        for (Index i = 0; i < w; ++i)
            for (Index j = 0; j < i; ++j)
                if (full_.abar().at(k * w + i, (k + 1) * w + j) != 0)
                    return false;
        return true;
    };

    for (Index r = 0; r < d.nbar; ++r) {
        for (std::size_t t = 0; t < rows_of[r].size(); ++t) {
            Index k = rows_of[r][t];
            SeqRow row;
            row.orig_k = k;
            row.orig_r = r;
            row.x_block = k % mbar;
            row.l_x_block = (k % mbar + 1) % mbar;
            row.b_external = (t == 0);
            row.y_final = (t + 1 == rows_of[r].size());

            if (!seq.empty()) {
                const SeqRow &prev = seq.back();
                bool prev_l_nonzero = prev.orig_k >= 0 &&
                                      !l_is_zero(prev.orig_k);
                if (prev_l_nonzero &&
                    prev.l_x_block != row.x_block) {
                    SeqRow sep;
                    sep.orig_k = -1;
                    sep.orig_r = -1;
                    sep.x_block = prev.l_x_block;
                    sep.l_x_block = row.x_block;
                    // A separator inside a chain carries the partial
                    // result through; between chains it is inert.
                    sep.b_external = !(prev.orig_r == r && !prev.y_final);
                    sep.y_final = false;
                    if (!sep.b_external) {
                        // The chain detours through the separator:
                        // the previous row recirculates instead of
                        // being the (temporarily assumed) emitter.
                        seq.back().y_final = false;
                    }
                    seq.push_back(sep);
                    if (!sep.b_external)
                        row.b_external = false;
                }
            }
            seq.push_back(row);
        }
    }

    // Separators inside chains were only detected pairwise above for
    // x-sharing; chain continuity (feedback) is encoded in the
    // b/y flags already set. Record empty original rows (y_r = b_r).
    first_in_row_.clear();
    last_in_row_.clear();
    kept_.clear();

    const Index rows = static_cast<Index>(seq.size());
    band_ = Band<Scalar>(rows * w, rows * w + w - 1, 0, w - 1);
    x_blocks_.clear();
    row_r_.clear();
    for (Index t = 0; t < rows; ++t) {
        const SeqRow &row = seq[static_cast<std::size_t>(t)];
        kept_.push_back(row.orig_k);
        first_in_row_.push_back(row.b_external ? 1 : 0);
        last_in_row_.push_back(row.y_final ? 1 : 0);
        x_blocks_.push_back(row.x_block);
        row_r_.push_back(row.orig_r);
        if (row.orig_k >= 0) {
            Index k = row.orig_k;
            for (Index i = 0; i < w; ++i) {
                for (Index off = 0; off <= w - 1; ++off) {
                    Scalar v;
                    if (i + off < w) // Ū region
                        v = full_.abar().at(k * w + i, k * w + i + off);
                    else             // L̄ region
                        v = full_.abar().at(k * w + i,
                                            (k + 1) * w + (i + off - w));
                    band_.ref(t * w + i, t * w + i + off) = v;
                }
            }
        }
    }
    tail_x_block_ = seq.empty()
                        ? 0
                        : seq.back().l_x_block;
}

BandMatVecSpec
SparseDbt::spec(const Vec<Scalar> &x, const Vec<Scalar> &b)
{
    const MatVecDims &d = full_.dims();
    const Index w = d.w;
    const Index rows = static_cast<Index>(kept_.size());
    Vec<Scalar> xp = x.paddedTo(d.mbar * w);
    b_padded_ = b.paddedTo(d.nbar * w);

    xbar_ = Vec<Scalar>(rows * w + w - 1);
    for (Index t = 0; t < rows; ++t)
        for (Index e = 0; e < w; ++e)
            xbar_[t * w + e] = xp[x_blocks_[t] * w + e];
    for (Index e = 0; e < w - 1; ++e)
        xbar_[rows * w + e] = xp[tail_x_block_ * w + e];

    BandMatVecSpec s;
    s.abar = &band_;
    s.xbar = xbar_;
    s.bIsExternal.assign(static_cast<std::size_t>(rows * w), 0);
    s.yIsFinal.assign(static_cast<std::size_t>(rows * w), 0);
    s.externalB = Vec<Scalar>(rows * w);
    for (Index t = 0; t < rows; ++t) {
        for (Index e = 0; e < w; ++e) {
            Index i = t * w + e;
            s.bIsExternal[i] = first_in_row_[t];
            s.yIsFinal[i] = last_in_row_[t];
            if (first_in_row_[t] && row_r_[t] >= 0)
                s.externalB[i] = b_padded_[row_r_[t] * w + e];
        }
    }
    return s;
}

Vec<Scalar>
SparseDbt::extractY(const Vec<Scalar> &ybar) const
{
    const MatVecDims &d = full_.dims();
    const Index w = d.w;
    SAP_ASSERT(b_padded_.size() == d.nbar * w,
               "call spec() before extractY()");

    // Rows with no surviving blocks produce y_r = b_r.
    Vec<Scalar> y_pad = b_padded_;
    for (Index t = 0; t < static_cast<Index>(kept_.size()); ++t) {
        if (!last_in_row_[t] || row_r_[t] < 0)
            continue;
        for (Index e = 0; e < w; ++e)
            y_pad[row_r_[t] * w + e] = ybar[t * w + e];
    }
    return y_pad.slice(0, d.n);
}

} // namespace sap
