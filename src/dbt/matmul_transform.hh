/**
 * @file
 * DBT transformations for matrix-matrix multiplication (§3 of the
 * paper): C = A·B + E on the w-by-w hexagonal array.
 *
 * Ā (upper band, bandwidth w, square of order N = w·p̄n̄m̄ + w − 1):
 *   1. apply DBT-by-rows to A            -> band period Ā^b
 *   2. juxtapose m̄ copies of Ā^b, append the triangular tail U'
 *      (the leading (w−1)×(w−1) corner of Ā^b).
 *
 * B̄ (lower band, bandwidth w, same order):
 *   1. split B into m̄ column blocks B_c (p × w)
 *   2. B̄^b_c = (DBT-by-rows(B_cᵀ))ᵀ      -> lower band period
 *   3. juxtapose n̄ copies of each B̄^b_c  -> B̄^d_c
 *   4. concatenate B̄^d_0 … B̄^d_{m̄−1}, append the tail L'
 *      (the leading (w−1)×(w−1) corner of B̄^b_0).
 *
 * Block-level provenance (all derived in DESIGN.md §4.3): for band
 * block row k with r = ⌊(k mod n̄p̄)/p̄⌋, s = k mod p̄, c = ⌊k/(n̄p̄)⌋:
 *
 *   Ā(k,k)   = U^A_{r,s}        Ā(k,k+1) = L^A_{r,(s+1) mod p̄}
 *   B̄(k,k)   = L⁺^B_{s,c}       B̄(k,k−1) = U⁻^B_{s,⌊(k−1)/(n̄p̄)⌋}
 *
 * where U^A/L^A split A-blocks with the diagonal in U, and
 * L⁺/U⁻ split B-blocks with the diagonal in L.
 */

#ifndef SAP_DBT_MATMUL_TRANSFORM_HH
#define SAP_DBT_MATMUL_TRANSFORM_HH

#include "base/types.hh"
#include "mat/band.hh"
#include "mat/block.hh"
#include "mat/dense.hh"

namespace sap {

/** Problem dimensions of a DBT mat-mul instance. */
struct MatMulDims
{
    Index n;    ///< rows of A and C
    Index p;    ///< cols of A = rows of B
    Index m;    ///< cols of B and C
    Index w;    ///< hexagonal array size (w×w PEs)
    Index nbar; ///< ⌈n/w⌉
    Index pbar; ///< ⌈p/w⌉
    Index mbar; ///< ⌈m/w⌉

    /** Band block rows before the tail: K = p̄·n̄·m̄. */
    Index blockCount() const { return pbar * nbar * mbar; }
    /** Scalar order of Ā and B̄: N = w·K + w − 1. */
    Index order() const { return blockCount() * w + w - 1; }
};

/**
 * The transformed pair (Ā, B̄) plus provenance accessors.
 */
class MatMulTransform
{
  public:
    /**
     * @param a Dense A (n×p).
     * @param b Dense B (p×m).
     * @param w Hexagonal array size.
     */
    MatMulTransform(const Dense<Scalar> &a, const Dense<Scalar> &b,
                    Index w);

    const MatMulDims &dims() const { return dims_; }

    /** Ā: square upper band, bandwidth w. */
    const Band<Scalar> &abar() const { return abar_; }
    /** B̄: square lower band, bandwidth w. */
    const Band<Scalar> &bbar() const { return bbar_; }

    //-----------------------------------------------------------------
    // Block-level provenance (k in [0, blockCount()], where
    // blockCount() is the tail row).
    //-----------------------------------------------------------------

    /** Original A block-row index r of band block row k. */
    Index rOf(Index k) const;
    /** Original A block-column (= B block-row) index s of row k. */
    Index sOf(Index k) const;
    /** Original B block-column index c of row k. */
    Index cOf(Index k) const;

    /** Ā(k,k): the U^A block (w×w dense copy; tail-clipped at K). */
    Dense<Scalar> aDiagBlock(Index k) const;
    /** Ā(k,k+1): the L^A block; zero block at the tail. */
    Dense<Scalar> aSuperBlock(Index k) const;
    /** B̄(k,k): the L⁺ block (tail-clipped at K). */
    Dense<Scalar> bDiagBlock(Index k) const;
    /** B̄(k,k−1): the U⁻ block (k in [1, blockCount()]). */
    Dense<Scalar> bSubBlock(Index k) const;

    /** The padded block partitions of A and B. */
    const BlockPartition<Scalar> &aBlocks() const { return ablocks_; }
    /** @copydoc aBlocks() */
    const BlockPartition<Scalar> &bBlocks() const { return bblocks_; }

    /**
     * Structural validation: band occupancy, single-copy coverage,
     * and exact reconstruction of the band from provenance blocks.
     */
    bool validate() const;

  private:
    MatMulDims dims_;
    BlockPartition<Scalar> ablocks_;
    BlockPartition<Scalar> bblocks_;
    Band<Scalar> abar_;
    Band<Scalar> bbar_;
};

} // namespace sap

#endif // SAP_DBT_MATMUL_TRANSFORM_HH
