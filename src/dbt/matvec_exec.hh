/**
 * @file
 * Block-level algebraic executor for the transformed mat-vec
 * problem.
 *
 * Computes ȳ = Ā·x̄ + b̄ sequentially, honoring the feedback
 * semantics (b̄ of a fed-back block row *is* the previous block
 * row's ȳ). This is the fast oracle used to cross-check the
 * cycle-accurate simulator and to run large parameter sweeps.
 */

#ifndef SAP_DBT_MATVEC_EXEC_HH
#define SAP_DBT_MATVEC_EXEC_HH

#include "dbt/matvec_transform.hh"
#include "mat/vector.hh"

namespace sap {

/** Result of an algebraic transformed-problem execution. */
struct MatVecExecResult
{
    Vec<Scalar> ybar; ///< full transformed result vector
    Vec<Scalar> y;    ///< extracted original result (length n)
};

/**
 * Execute the transformed problem ȳ = Ā·x̄ + b̄ with feedback.
 *
 * @param t The DBT transform of A.
 * @param x Original x (length m).
 * @param b Original b (length n).
 */
MatVecExecResult execTransformed(const MatVecTransform &t,
                                 const Vec<Scalar> &x,
                                 const Vec<Scalar> &b);

} // namespace sap

#endif // SAP_DBT_MATVEC_EXEC_HH
