#include "dbt/interleave.hh"

#include "base/logging.hh"
#include "base/math_util.hh"

namespace sap {

SplitProblem::SplitProblem(const MatVecTransform &t, const Vec<Scalar> &x,
                           const Vec<Scalar> &b)
    : t_(t)
{
    const MatVecDims &d = t.dims();
    SAP_ASSERT(d.nbar >= 2,
               "cannot split a problem with a single block row");

    // Cut after ⌈n̄/2⌉ original block rows = a multiple of m̄ band
    // block rows, so no feedback chain crosses the cut.
    Index half_rows = ceilDiv(d.nbar, 2);
    cut_blocks_ = half_rows * d.mbar;

    buildHalf(0, cut_blocks_, band_first_, spec_first_, x, b);
    buildHalf(cut_blocks_, d.blockCount(), band_second_, spec_second_,
              x, b);
}

void
SplitProblem::buildHalf(Index k0, Index k1, Band<Scalar> &band,
                        BandMatVecSpec &spec, const Vec<Scalar> &x,
                        const Vec<Scalar> &b)
{
    const MatVecDims &d = t_.dims();
    const Index w = d.w;
    const Index rows = (k1 - k0) * w;

    band = Band<Scalar>(rows, rows + w - 1, 0, w - 1);
    for (Index i = 0; i < rows; ++i) {
        Index gi = k0 * w + i;
        for (Index off = 0; off <= w - 1; ++off)
            band.ref(i, i + off) = t_.abar().at(gi, gi + off);
    }

    Vec<Scalar> xbar_full = t_.transformX(x);
    spec.abar = &band;
    spec.xbar = xbar_full.slice(k0 * w, rows + w - 1);
    spec.bIsExternal.assign(static_cast<std::size_t>(rows), 0);
    spec.yIsFinal.assign(static_cast<std::size_t>(rows), 0);
    spec.externalB = Vec<Scalar>(rows);
    for (Index i = 0; i < rows; ++i) {
        Index gi = k0 * w + i;
        spec.bIsExternal[i] = t_.scalarIsExternalB(gi) ? 1 : 0;
        spec.yIsFinal[i] = t_.scalarIsFinalY(gi) ? 1 : 0;
        if (spec.bIsExternal[i])
            spec.externalB[i] = t_.externalB(b, gi);
    }
}

BandMatVecSpec
SplitProblem::first() const
{
    return spec_first_;
}

BandMatVecSpec
SplitProblem::second() const
{
    return spec_second_;
}

Vec<Scalar>
SplitProblem::extractY(const Vec<Scalar> &ybar_first,
                       const Vec<Scalar> &ybar_second) const
{
    Vec<Scalar> full = ybar_first;
    full.append(ybar_second);
    return t_.extractY(full);
}

} // namespace sap
