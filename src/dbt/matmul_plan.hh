/**
 * @file
 * End-to-end mat-mul execution plan: DBT transformation, cycle-
 * accurate hexagonal execution with spiral feedback, and result
 * extraction. The user-facing API for C = A·B + E on a fixed w×w
 * hexagonal array.
 */

#ifndef SAP_DBT_MATMUL_PLAN_HH
#define SAP_DBT_MATMUL_PLAN_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dbt/matmul_exec.hh"
#include "dbt/matmul_io.hh"
#include "dbt/matmul_transform.hh"
#include "sim/hex_driver.hh"
#include "sim/spiral_feedback.hh"

namespace sap {

/** Result of a planned systolic mat-mul execution. */
struct MatMulPlanResult
{
    /** The final C = A·B + E (original n×m shape). */
    Dense<Scalar> c;
    /** Measured statistics (paper step-count convention). */
    RunStats stats;
    /** Raw edge-to-edge cycles. */
    Cycle totalCycles = 0;
    /** Feedback measurements (delays, storage, topology audit). */
    std::shared_ptr<SpiralFeedback> feedback;
};

/**
 * Reusable execution plan for one (A, B) pair on one array size.
 *
 * Construction does *all* plan work: the DBT transform, the Appendix
 * I/O composition, and the scalar-level routing tables (where every
 * I-band input comes from, where every O-band output goes). run(e)
 * only streams data through the array, so a plan cached by the
 * serving layer amortizes the full dense→band build across requests.
 *
 * Thread-compatibility: const member functions are safe to call
 * concurrently (each run owns its transient state).
 */
class MatMulPlan
{
  public:
    /**
     * @param a Dense A (n×p).
     * @param b Dense B (p×m).
     * @param w Hexagonal array size.
     */
    MatMulPlan(const Dense<Scalar> &a, const Dense<Scalar> &b, Index w);

    /** The underlying transform. */
    const MatMulTransform &transform() const { return transform_; }
    /** The Appendix I/O composer. */
    const IoComposer &composer() const { return composer_; }
    /** Dimensions record. */
    const MatMulDims &dims() const { return transform_.dims(); }

    /**
     * Execute C = A·B + E on the simulated hexagonal array with
     * spiral feedback. Every addition happens inside the array; the
     * host only routes the feedback values at their scheduled
     * cycles.
     *
     * @param e Additive matrix (n×m); zero matrix for plain C = A·B.
     */
    MatMulPlanResult run(const Dense<Scalar> &e) const;

    /** Fast block-level execution (the algebraic oracle). */
    MatMulExecResult runBlockLevel(const Dense<Scalar> &e) const;

    /**
     * Semantics replay of run() (src/semantics/): every O value
     * accumulated in the array's MAC order with the feedback
     * composition replayed through the routing tables, so C is
     * bit-identical to the simulation (runBlockLevel() is not —
     * it accumulates block-wise); stats from analysis/formulas.hh,
     * no feedback measurement object.
     */
    MatMulPlanResult runSemantics(const Dense<Scalar> &e) const;

  private:
    /** Precomputed source of one in-band I position. */
    struct InputRoute
    {
        enum class Kind : std::uint8_t { Zero, FromE, FromO };
        Kind kind = Kind::Zero;
        bool irregular = false; ///< FromO: irregular spiral transfer
        Index r = 0;            ///< FromE: padded E row; FromO: O row
        Index c = 0;            ///< FromE: padded E col; FromO: O col
    };

    /** Flat index of in-band position (i, j), |i−j| <= w−1. */
    std::size_t bandIdx(Index i, Index j) const;

    MatMulTransform transform_;
    IoComposer composer_;

    // Scalar routing tables keyed by bandIdx(): built once at
    // construction, read-only during run().
    std::vector<InputRoute> routes_;
    std::vector<Index> extract_row_; ///< padded C row, −1 = discard
    std::vector<Index> extract_col_;
    /** Per-cycle I/O event schedule (depends only on the bands). */
    HexIoSchedule sched_;
};

} // namespace sap

#endif // SAP_DBT_MATMUL_PLAN_HH
