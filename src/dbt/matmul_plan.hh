/**
 * @file
 * End-to-end mat-mul execution plan: DBT transformation, cycle-
 * accurate hexagonal execution with spiral feedback, and result
 * extraction. The user-facing API for C = A·B + E on a fixed w×w
 * hexagonal array.
 */

#ifndef SAP_DBT_MATMUL_PLAN_HH
#define SAP_DBT_MATMUL_PLAN_HH

#include <memory>

#include "dbt/matmul_exec.hh"
#include "dbt/matmul_io.hh"
#include "dbt/matmul_transform.hh"
#include "sim/hex_driver.hh"
#include "sim/spiral_feedback.hh"

namespace sap {

/** Result of a planned systolic mat-mul execution. */
struct MatMulPlanResult
{
    /** The final C = A·B + E (original n×m shape). */
    Dense<Scalar> c;
    /** Measured statistics (paper step-count convention). */
    RunStats stats;
    /** Raw edge-to-edge cycles. */
    Cycle totalCycles = 0;
    /** Feedback measurements (delays, storage, topology audit). */
    std::shared_ptr<SpiralFeedback> feedback;
};

/**
 * Reusable execution plan for one (A, B) pair on one array size.
 */
class MatMulPlan
{
  public:
    /**
     * @param a Dense A (n×p).
     * @param b Dense B (p×m).
     * @param w Hexagonal array size.
     */
    MatMulPlan(const Dense<Scalar> &a, const Dense<Scalar> &b, Index w);

    /** The underlying transform. */
    const MatMulTransform &transform() const { return transform_; }
    /** The Appendix I/O composer. */
    const IoComposer &composer() const { return composer_; }
    /** Dimensions record. */
    const MatMulDims &dims() const { return transform_.dims(); }

    /**
     * Execute C = A·B + E on the simulated hexagonal array with
     * spiral feedback. Every addition happens inside the array; the
     * host only routes the feedback values at their scheduled
     * cycles.
     *
     * @param e Additive matrix (n×m); zero matrix for plain C = A·B.
     */
    MatMulPlanResult run(const Dense<Scalar> &e) const;

    /** Fast block-level execution (the algebraic oracle). */
    MatMulExecResult runBlockLevel(const Dense<Scalar> &e) const;

  private:
    MatMulTransform transform_;
    IoComposer composer_;
};

} // namespace sap

#endif // SAP_DBT_MATMUL_PLAN_HH
