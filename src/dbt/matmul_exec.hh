/**
 * @file
 * Block-level executor of the transformed matrix-matrix problem:
 * computes the output band O = band(Ā·B̄) + I with I composed from E
 * and fed-back O per the Appendix rules, then extracts C = A·B + E.
 *
 * This is the algebraic oracle for the cycle-accurate hexagonal
 * simulator and the engine behind large parameter sweeps.
 */

#ifndef SAP_DBT_MATMUL_EXEC_HH
#define SAP_DBT_MATMUL_EXEC_HH

#include <vector>

#include "dbt/matmul_io.hh"
#include "dbt/matmul_transform.hh"

namespace sap {

/** The five per-row part blocks of the output band O. */
struct OBandRow
{
    Dense<Scalar> uSub;   ///< U_{k,0}: strictly upper shaped
    Dense<Scalar> lDiag;  ///< L_{k,0}
    Dense<Scalar> diag;   ///< D_k (stored as a full block, off-diag 0)
    Dense<Scalar> uDiag;  ///< U_{k,1}
    Dense<Scalar> lSuper; ///< L_{k,1}: strictly lower shaped
};

/** Result of a block-level transformed mat-mul execution. */
struct MatMulExecResult
{
    /** Final C = A·B + E (original n×m shape). */
    Dense<Scalar> c;
    /** The full output band, for inspection and cross-checking. */
    std::vector<OBandRow> oband;
};

/**
 * Execute the transformed problem.
 *
 * @param t The DBT mat-mul transform of (A, B).
 * @param e Additive matrix E (n×m); pass a zero matrix for C = A·B.
 */
MatMulExecResult execTransformedMatMul(const MatMulTransform &t,
                                       const Dense<Scalar> &e);

} // namespace sap

#endif // SAP_DBT_MATMUL_EXEC_HH
