/**
 * @file
 * End-to-end mat-vec execution plan: DBT transformation + systolic
 * execution + result extraction.
 *
 * This is the library's primary user-facing API for y = A·x + b on a
 * fixed-size linear array: construct a plan once per matrix, then
 * run it against any number of (x, b) pairs.
 */

#ifndef SAP_DBT_MATVEC_PLAN_HH
#define SAP_DBT_MATVEC_PLAN_HH

#include <memory>

#include "dbt/matvec_transform.hh"
#include "sim/grouped_array.hh"
#include "sim/linear_driver.hh"

namespace sap {

/** Result of a planned systolic mat-vec execution. */
struct MatVecPlanResult
{
    /** The final y = A·x + b (length n). */
    Vec<Scalar> y;
    /** Measured execution statistics. */
    RunStats stats;
    /** Observed feedback delay (paper: equals w). */
    Cycle observedFeedbackDelay = -1;
    /** Registers in the feedback chain (paper: w). */
    Index feedbackRegisters = 0;
    /** Port trace when requested. */
    Trace trace;
};

/**
 * Reusable execution plan for one matrix on one array size.
 *
 * Thread-compatibility: const member functions are safe to call
 * concurrently from multiple threads (each run builds its own
 * simulator).
 */
class MatVecPlan
{
  public:
    /**
     * @param a The dense matrix A (any shape).
     * @param w The fixed systolic array size.
     */
    MatVecPlan(const Dense<Scalar> &a, Index w);

    /** The underlying DBT transform. */
    const MatVecTransform &transform() const { return transform_; }

    /** Convenience access to the dimensions record. */
    const MatVecDims &dims() const { return transform_.dims(); }

    /**
     * Execute y = A·x + b on the simulated array.
     *
     * @param x Input vector (length m).
     * @param b Additive vector (length n).
     * @param record_trace Record port events for figure dumps.
     */
    MatVecPlanResult run(const Vec<Scalar> &x, const Vec<Scalar> &b,
                         bool record_trace = false) const;

    /**
     * Execute with the paper's "overlapping" optimization: the
     * transformed problem is split into two disjoint sub-problems
     * (at an original-block-row boundary, the dotted line of
     * Fig. 2.b) that interleave on alternate cycles.
     *
     * @pre dims().nbar >= 2 (a single block row cannot be split
     *      without breaking a feedback chain).
     */
    MatVecPlanResult runOverlapped(const Vec<Scalar> &x,
                                   const Vec<Scalar> &b) const;

    /**
     * Execute with 2:1 PE grouping (A = ⌈w/2⌉ physical PEs).
     * Returns both logical results and grouped statistics.
     */
    GroupedRunResult runGroupedPlan(const Vec<Scalar> &x,
                                    const Vec<Scalar> &b) const;

    /**
     * Semantics replay of run() (src/semantics/): the band
     * accumulation performed as host arithmetic in the array's
     * operation order, so y is bit-identical to the simulation;
     * stats come from analysis/formulas.hh instead of measurement,
     * and no trace is produced.
     */
    MatVecPlanResult runSemantics(const Vec<Scalar> &x,
                                  const Vec<Scalar> &b) const;

    /** Semantics replay of runOverlapped() (bit-identical, no
     *  trace, formula-derived stats). */
    MatVecPlanResult runOverlappedSemantics(const Vec<Scalar> &x,
                                            const Vec<Scalar> &b) const;

    /** Semantics replay of runGroupedPlan(); conflictFree is true
     *  by construction (the schedule proof lives in the sim). */
    GroupedRunResult runGroupedSemantics(const Vec<Scalar> &x,
                                         const Vec<Scalar> &b) const;

    /**
     * Build the array-ready spec (exposed for drivers and tests).
     * The returned spec points at this plan's band matrix, so the
     * plan must outlive it.
     */
    BandMatVecSpec makeSpec(const Vec<Scalar> &x,
                            const Vec<Scalar> &b) const;

  private:
    MatVecTransform transform_;
    /** Coefficient firing schedule (depends only on the band):
     *  built once here so every run streams it. */
    LinearASchedule asched_;
    /** Input-independent b̄/ȳ schedules, hoisted out of makeSpec()
     *  so each run copies instead of re-deriving them. */
    std::vector<std::uint8_t> b_external_;
    std::vector<std::uint8_t> y_final_;
};

/**
 * Run two *independent* problems on one array, interleaved
 * (the paper's other overlapping option). Both plans must share w.
 */
struct TwoProblemResult
{
    MatVecPlanResult first;
    MatVecPlanResult second;
    RunStats combined;
};

TwoProblemResult runTwoProblems(const MatVecPlan &pa,
                                const Vec<Scalar> &xa,
                                const Vec<Scalar> &ba,
                                const MatVecPlan &pb,
                                const Vec<Scalar> &xb,
                                const Vec<Scalar> &bb);

} // namespace sap

#endif // SAP_DBT_MATVEC_PLAN_HH
