#include "dbt/matmul_exec.hh"

#include "base/logging.hh"
#include "mat/ops.hh"
#include "mat/triangular.hh"

namespace sap {

namespace {

/** The triangular shape class of each band part. */
TriPart
shapeOf(BandPart part)
{
    switch (part) {
      case BandPart::USub:
      case BandPart::UDiag:  return TriPart::UpperStrict;
      case BandPart::LDiag:
      case BandPart::LSuper: return TriPart::LowerStrict;
      case BandPart::Diag:   return TriPart::DiagOnly;
    }
    return TriPart::DiagOnly;
}

/** Fetch a stored O part block. */
const Dense<Scalar> &
oPartOf(const std::vector<OBandRow> &oband, Index k, BandPart part)
{
    const OBandRow &row = oband.at(static_cast<std::size_t>(k));
    switch (part) {
      case BandPart::USub:   return row.uSub;
      case BandPart::LDiag:  return row.lDiag;
      case BandPart::Diag:   return row.diag;
      case BandPart::UDiag:  return row.uDiag;
      case BandPart::LSuper: return row.lSuper;
    }
    SAP_PANIC("unreachable");
}

} // namespace

MatMulExecResult
execTransformedMatMul(const MatMulTransform &t, const Dense<Scalar> &e)
{
    const MatMulDims &d = t.dims();
    const Index K = d.blockCount();
    const Index w = d.w;
    SAP_ASSERT(e.rows() == d.n && e.cols() == d.m,
               "E must be n×m = ", d.n, "x", d.m);

    IoComposer composer(d);
    Dense<Scalar> e_pad = e.paddedTo(d.nbar * w, d.mbar * w);

    // Resolve one I-band part block.
    auto input_block = [&](Index k, BandPart part) -> Dense<Scalar> {
        IoSource src = composer.inputSource(k, part);
        switch (src.kind) {
          case IoSource::Kind::Zero:
            return Dense<Scalar>(w, w);
          case IoSource::Kind::FromE: {
            Dense<Scalar> blk(w, w);
            for (Index i = 0; i < w; ++i)
                for (Index j = 0; j < w; ++j)
                    if (inTriPart(shapeOf(part), i, j))
                        blk(i, j) = e_pad(src.eRow * w + i,
                                          src.eCol * w + j);
            return blk;
          }
          case IoSource::Kind::FromO:
            return Dense<Scalar>(); // resolved by caller from oband
        }
        SAP_PANIC("unreachable");
    };

    MatMulExecResult res;
    res.oband.resize(static_cast<std::size_t>(K + 1));

    auto resolve = [&](Index k, BandPart part) -> Dense<Scalar> {
        IoSource src = composer.inputSource(k, part);
        if (src.kind == IoSource::Kind::FromO) {
            const Dense<Scalar> &o = oPartOf(res.oband, src.oRow,
                                             src.oPart);
            SAP_ASSERT(o.rows() == w, "O part (", src.oRow,
                       ") consumed before it was produced");
            return o;
        }
        return input_block(k, part);
    };

    for (Index k = 0; k <= K; ++k) {
        OBandRow &row = res.oband[static_cast<std::size_t>(k)];

        // Sub-diagonal position (k, k−1): Ū_k · U⁻_k + I.
        if (k >= 1) {
            Dense<Scalar> prod = matMul(t.aDiagBlock(k), t.bSubBlock(k));
            SAP_ASSERT(conformsToTriPart(prod, TriPart::UpperStrict),
                       "sub-diagonal product must be strictly upper");
            row.uSub = add(prod, resolve(k, BandPart::USub));
        } else {
            row.uSub = Dense<Scalar>(w, w);
        }

        // Diagonal position (k, k): Ū_k·L⁺_k + L̄_k·U⁻_{k+1} + I.
        {
            Dense<Scalar> prod = matMul(t.aDiagBlock(k),
                                        t.bDiagBlock(k));
            if (k + 1 <= K)
                prod = add(prod, matMul(t.aSuperBlock(k),
                                        t.bSubBlock(k + 1)));
            Dense<Scalar> full =
                add(add(prod, resolve(k, BandPart::LDiag)),
                    add(resolve(k, BandPart::Diag),
                        resolve(k, BandPart::UDiag)));
            row.lDiag = triPartOf(full, TriPart::LowerStrict);
            row.diag = triPartOf(full, TriPart::DiagOnly);
            row.uDiag = triPartOf(full, TriPart::UpperStrict);
        }

        // Super-diagonal position (k, k+1): L̄_k · L⁺_{k+1} + I.
        if (k <= K - 1) {
            Dense<Scalar> prod = matMul(t.aSuperBlock(k),
                                        t.bDiagBlock(k + 1));
            SAP_ASSERT(conformsToTriPart(prod, TriPart::LowerStrict),
                       "super-diagonal product must be strictly lower");
            row.lSuper = add(prod, resolve(k, BandPart::LSuper));
        } else {
            row.lSuper = Dense<Scalar>(w, w);
        }
    }

    // Extraction: assemble every C block from its O slots.
    Dense<Scalar> c_pad(d.nbar * w, d.mbar * w);
    for (Index i = 0; i < d.nbar; ++i) {
        for (Index j = 0; j < d.mbar; ++j) {
            for (BandPart part : {BandPart::UDiag, BandPart::Diag,
                                  BandPart::LDiag}) {
                ExtractSource src = composer.extractSource(i, j, part);
                const Dense<Scalar> &o = oPartOf(res.oband, src.oRow,
                                                 src.oPart);
                for (Index bi = 0; bi < w; ++bi)
                    for (Index bj = 0; bj < w; ++bj)
                        if (inTriPart(shapeOf(part), bi, bj))
                            c_pad(i * w + bi, j * w + bj) = o(bi, bj);
            }
        }
    }
    res.c = c_pad.topLeft(d.n, d.m);
    return res;
}

} // namespace sap
