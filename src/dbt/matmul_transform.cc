#include "dbt/matmul_transform.hh"

#include "base/logging.hh"
#include "base/math_util.hh"
#include "mat/triangular.hh"

namespace sap {

MatMulTransform::MatMulTransform(const Dense<Scalar> &a,
                                 const Dense<Scalar> &b, Index w)
    : dims_{a.rows(), a.cols(), b.cols(), w,
            ceilDiv(a.rows(), w), ceilDiv(a.cols(), w),
            ceilDiv(b.cols(), w)},
      ablocks_(a, w), bblocks_(b, w),
      abar_(dims_.order(), dims_.order(), 0, w - 1),
      bbar_(dims_.order(), dims_.order(), w - 1, 0)
{
    SAP_ASSERT(a.cols() == b.rows(), "A cols ", a.cols(),
               " != B rows ", b.rows());
    const Index K = dims_.blockCount();
    const Index N = dims_.order();

    // ---- Ā -------------------------------------------------------
    // Interior block rows: Ū_k on the diagonal, L̄_k one block right.
    for (Index k = 0; k < K; ++k) {
        Dense<Scalar> u = ablocks_.block(rOf(k), sOf(k));
        Dense<Scalar> l = ablocks_.block(rOf(k), (sOf(k) + 1)
                                         % dims_.pbar);
        for (Index i = 0; i < w; ++i) {
            for (Index j = i; j < w; ++j)      // upper incl. diagonal
                abar_.ref(k * w + i, k * w + j) = u(i, j);
            for (Index j = 0; j < i; ++j)      // strictly lower
                abar_.ref(k * w + i, (k + 1) * w + j) = l(i, j);
        }
    }
    // Tail U': leading (w−1)×(w−1) corner of U^A_{0,0}.
    {
        Dense<Scalar> u0 = ablocks_.block(0, 0);
        for (Index i = 0; i < w - 1; ++i)
            for (Index j = i; j < w - 1; ++j)
                abar_.ref(K * w + i, K * w + j) = u0(i, j);
    }

    // ---- B̄ -------------------------------------------------------
    // Interior: L⁺ on the diagonal, U⁻ one block left (k >= 1).
    for (Index k = 0; k < K; ++k) {
        Dense<Scalar> lp = bblocks_.block(sOf(k), cOf(k));
        for (Index i = 0; i < w; ++i)
            for (Index j = 0; j <= i; ++j)     // lower incl. diagonal
                bbar_.ref(k * w + i, k * w + j) = lp(i, j);
    }
    for (Index k = 1; k <= K; ++k) {
        // U⁻ block: B block (k mod p̄, ⌊(k−1)/(n̄p̄)⌋), strictly upper.
        Dense<Scalar> um = bSubBlock(k);
        for (Index i = 0; i < w; ++i) {
            if (k * w + i >= N)
                break; // the tail row has only w−1 rows
            for (Index j = i + 1; j < w; ++j)
                bbar_.ref(k * w + i, (k - 1) * w + j) = um(i, j);
        }
    }
    // Tail L': leading (w−1)×(w−1) corner of L⁺_{0,0}.
    {
        Dense<Scalar> l0 = bblocks_.block(0, 0);
        for (Index i = 0; i < w - 1; ++i)
            for (Index j = 0; j <= i; ++j)
                bbar_.ref(K * w + i, K * w + j) = l0(i, j);
    }
}

Index
MatMulTransform::rOf(Index k) const
{
    return (k % (dims_.nbar * dims_.pbar)) / dims_.pbar;
}

Index
MatMulTransform::sOf(Index k) const
{
    return k % dims_.pbar;
}

Index
MatMulTransform::cOf(Index k) const
{
    return k / (dims_.nbar * dims_.pbar);
}

Dense<Scalar>
MatMulTransform::aDiagBlock(Index k) const
{
    const Index K = dims_.blockCount();
    SAP_ASSERT(k >= 0 && k <= K, "block row ", k, " out of range");
    if (k < K)
        return triPartOf(ablocks_.block(rOf(k), sOf(k)),
                         TriPart::UpperWithDiag);
    // Tail U': U^A_{0,0} with its last row and column zeroed. The
    // clipped row/column contribute nothing to the products the tail
    // participates in (see DESIGN.md §4.3).
    Dense<Scalar> u = triPartOf(ablocks_.block(0, 0),
                                TriPart::UpperWithDiag);
    for (Index t = 0; t < dims_.w; ++t) {
        u(dims_.w - 1, t) = 0;
        u(t, dims_.w - 1) = 0;
    }
    return u;
}

Dense<Scalar>
MatMulTransform::aSuperBlock(Index k) const
{
    const Index K = dims_.blockCount();
    SAP_ASSERT(k >= 0 && k <= K, "block row ", k, " out of range");
    if (k == K)
        return Dense<Scalar>(dims_.w, dims_.w); // no super block at tail
    return triPartOf(ablocks_.block(rOf(k), (sOf(k) + 1) % dims_.pbar),
                     TriPart::LowerStrict);
}

Dense<Scalar>
MatMulTransform::bDiagBlock(Index k) const
{
    const Index K = dims_.blockCount();
    SAP_ASSERT(k >= 0 && k <= K, "block row ", k, " out of range");
    if (k < K)
        return triPartOf(bblocks_.block(sOf(k), cOf(k)),
                         TriPart::LowerWithDiag);
    // Tail L': L⁺_{0,0} with last row/column zeroed.
    Dense<Scalar> l = triPartOf(bblocks_.block(0, 0),
                                TriPart::LowerWithDiag);
    for (Index t = 0; t < dims_.w; ++t) {
        l(dims_.w - 1, t) = 0;
        l(t, dims_.w - 1) = 0;
    }
    return l;
}

Dense<Scalar>
MatMulTransform::bSubBlock(Index k) const
{
    const Index K = dims_.blockCount();
    SAP_ASSERT(k >= 1 && k <= K, "sub block row ", k, " out of range");
    Index s = k % dims_.pbar; // == sOf(k) for k < K; 0 at the tail
    Index c = (k - 1) / (dims_.nbar * dims_.pbar);
    return triPartOf(bblocks_.block(s, c), TriPart::UpperStrict);
}

bool
MatMulTransform::validate() const
{
    const Index K = dims_.blockCount();
    const Index w = dims_.w;

    // Reconstruction: the band content must equal the provenance
    // blocks placed at their positions.
    for (Index k = 0; k <= K; ++k) {
        Dense<Scalar> u = aDiagBlock(k);
        for (Index i = 0; i < w; ++i) {
            for (Index j = i; j < w; ++j) {
                Index row = k * w + i, col = k * w + j;
                if (row >= dims_.order() || col >= dims_.order())
                    continue;
                if (abar_.at(row, col) != u(i, j))
                    return false;
            }
        }
    }

    // Coverage: every U^A block appears exactly m̄ times (once per
    // copy); every L⁺^B block appears exactly n̄ times.
    std::vector<Index> u_count(dims_.nbar * dims_.pbar, 0);
    std::vector<Index> l_count(dims_.pbar * dims_.mbar, 0);
    for (Index k = 0; k < K; ++k) {
        ++u_count[rOf(k) * dims_.pbar + sOf(k)];
        ++l_count[sOf(k) * dims_.mbar + cOf(k)];
    }
    for (Index v : u_count)
        if (v != dims_.mbar)
            return false;
    for (Index v : l_count)
        if (v != dims_.nbar)
            return false;
    return true;
}

} // namespace sap
