#include "dbt/matmul_plan.hh"

#include <unordered_map>

#include "base/logging.hh"
#include "mat/triangular.hh"

namespace sap {

namespace {

/** Classify a scalar band position (i, j) into (block row, part). */
struct PartPos
{
    Index k;       ///< band block row
    BandPart part; ///< part class
    Index il, jl;  ///< local coordinates inside the w×w block
};

PartPos
classify(Index i, Index j, Index w)
{
    PartPos p;
    p.k = i / w;
    p.il = i % w;
    p.jl = j % w;
    Index jblk = j / w;
    if (jblk == p.k - 1) {
        p.part = BandPart::USub;
    } else if (jblk == p.k + 1) {
        p.part = BandPart::LSuper;
    } else {
        SAP_ASSERT(jblk == p.k, "position (", i, ",", j,
                   ") outside the block band");
        p.part = p.jl > p.il    ? BandPart::UDiag
                 : p.jl < p.il  ? BandPart::LDiag
                                : BandPart::Diag;
    }
    return p;
}

/** Scalar coordinates of an O slot (row k, part) element (il, jl). */
std::pair<Index, Index>
oScalarCoords(Index k, BandPart part, Index il, Index jl, Index w)
{
    Index i = k * w + il;
    Index jblk = k;
    if (part == BandPart::USub)
        jblk = k - 1;
    else if (part == BandPart::LSuper)
        jblk = k + 1;
    return {i, jblk * w + jl};
}

} // namespace

MatMulPlan::MatMulPlan(const Dense<Scalar> &a, const Dense<Scalar> &b,
                       Index w)
    : transform_(a, b, w), composer_(transform_.dims())
{
    SAP_ASSERT(transform_.validate(), "mat-mul transform is malformed");
    SAP_ASSERT(composer_.validate(), "I/O composition is inconsistent");
}

MatMulExecResult
MatMulPlan::runBlockLevel(const Dense<Scalar> &e) const
{
    return execTransformedMatMul(transform_, e);
}

MatMulPlanResult
MatMulPlan::run(const Dense<Scalar> &e) const
{
    const MatMulDims &d = dims();
    const Index w = d.w;
    const Index N = d.order();
    SAP_ASSERT(e.rows() == d.n && e.cols() == d.m,
               "E must be n×m = ", d.n, "x", d.m);
    Dense<Scalar> e_pad = e.paddedTo(d.nbar * w, d.mbar * w);

    auto feedback = std::make_shared<SpiralFeedback>(w);

    // Captured O values, keyed by scalar band position.
    auto key_of = [N](Index i, Index j) { return i * N + j; };
    std::unordered_map<Index, std::pair<Scalar, Cycle>> captured;

    // Extraction routing: O scalar position -> padded C position.
    std::unordered_map<Index, std::pair<Index, Index>> extract_map;
    for (Index bi = 0; bi < d.nbar; ++bi) {
        for (Index bj = 0; bj < d.mbar; ++bj) {
            for (BandPart part : {BandPart::UDiag, BandPart::Diag,
                                  BandPart::LDiag}) {
                ExtractSource src = composer_.extractSource(bi, bj,
                                                            part);
                TriPart shape = part == BandPart::UDiag
                                    ? TriPart::UpperStrict
                                : part == BandPart::LDiag
                                    ? TriPart::LowerStrict
                                    : TriPart::DiagOnly;
                for (Index il = 0; il < w; ++il) {
                    for (Index jl = 0; jl < w; ++jl) {
                        if (!inTriPart(shape, il, jl))
                            continue;
                        auto [oi, oj] = oScalarCoords(src.oRow,
                                                      src.oPart, il,
                                                      jl, w);
                        extract_map[key_of(oi, oj)] = {bi * w + il,
                                                       bj * w + jl};
                    }
                }
            }
        }
    }

    Dense<Scalar> c_pad(d.nbar * w, d.mbar * w);

    HexBandSpec spec;
    spec.abar = &transform_.abar();
    spec.bbar = &transform_.bbar();
    spec.inputValue = [&](Index i, Index j) -> Scalar {
        PartPos pos = classify(i, j, w);
        IoSource src = composer_.inputSource(pos.k, pos.part);
        switch (src.kind) {
          case IoSource::Kind::Zero:
            return 0;
          case IoSource::Kind::FromE:
            return e_pad(src.eRow * w + pos.il, src.eCol * w + pos.jl);
          case IoSource::Kind::FromO: {
            auto [oi, oj] = oScalarCoords(src.oRow, src.oPart, pos.il,
                                          pos.jl, w);
            auto it = captured.find(key_of(oi, oj));
            SAP_ASSERT(it != captured.end(), "feedback for (", i, ",",
                       j, ") consumed before (", oi, ",", oj,
                       ") was produced");
            Cycle enter = i + j + std::max(i, j) + w - 1;
            feedback->recordTransfer(oj - oi, j - i, it->second.second,
                                     enter, src.irregular);
            return it->second.first;
          }
        }
        SAP_PANIC("unreachable");
    };
    spec.onOutput = [&](Index i, Index j, Scalar v, Cycle exit_cycle) {
        captured[key_of(i, j)] = {v, exit_cycle};
        auto it = extract_map.find(key_of(i, j));
        if (it != extract_map.end())
            c_pad(it->second.first, it->second.second) = v;
    };

    HexRunResult hex = runHexBandMatMul(spec);
    SAP_ASSERT(feedback->topologyRespected(),
               "a feedback transfer left its spiral loop");

    MatMulPlanResult res;
    res.c = c_pad.topLeft(d.n, d.m);
    res.stats = hex.stats;
    res.totalCycles = hex.totalCycles;
    res.feedback = feedback;
    return res;
}

} // namespace sap
