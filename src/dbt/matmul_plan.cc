#include "dbt/matmul_plan.hh"

#include <algorithm>

#include "base/logging.hh"
#include "mat/triangular.hh"

namespace sap {

namespace {

/** Classify a scalar band position (i, j) into (block row, part). */
struct PartPos
{
    Index k;       ///< band block row
    BandPart part; ///< part class
    Index il, jl;  ///< local coordinates inside the w×w block
};

PartPos
classify(Index i, Index j, Index w)
{
    PartPos p;
    p.k = i / w;
    p.il = i % w;
    p.jl = j % w;
    Index jblk = j / w;
    if (jblk == p.k - 1) {
        p.part = BandPart::USub;
    } else if (jblk == p.k + 1) {
        p.part = BandPart::LSuper;
    } else {
        SAP_ASSERT(jblk == p.k, "position (", i, ",", j,
                   ") outside the block band");
        p.part = p.jl > p.il    ? BandPart::UDiag
                 : p.jl < p.il  ? BandPart::LDiag
                                : BandPart::Diag;
    }
    return p;
}

/** Scalar coordinates of an O slot (row k, part) element (il, jl). */
std::pair<Index, Index>
oScalarCoords(Index k, BandPart part, Index il, Index jl, Index w)
{
    Index i = k * w + il;
    Index jblk = k;
    if (part == BandPart::USub)
        jblk = k - 1;
    else if (part == BandPart::LSuper)
        jblk = k + 1;
    return {i, jblk * w + jl};
}

} // namespace

std::size_t
MatMulPlan::bandIdx(Index i, Index j) const
{
    const Index w = dims().w;
    SAP_ASSERT(j - i > -w && j - i < w, "position (", i, ",", j,
               ") outside the width-", 2 * w - 1, " band");
    return static_cast<std::size_t>(i * (2 * w - 1) + (j - i) + w - 1);
}

MatMulPlan::MatMulPlan(const Dense<Scalar> &a, const Dense<Scalar> &b,
                       Index w)
    : transform_(a, b, w), composer_(transform_.dims())
{
    SAP_ASSERT(transform_.validate(), "mat-mul transform is malformed");
    SAP_ASSERT(composer_.validate(), "I/O composition is inconsistent");

    // Precompute the scalar routing tables so that run() is pure
    // streaming. Both tables are keyed by bandIdx() over the 2w−1
    // wide I/O band of the order-N transformed problem.
    const MatMulDims &d = dims();
    const Index N = d.order();
    const std::size_t slots = static_cast<std::size_t>(N * (2 * w - 1));

    // Input routing: where the I-band value of position (i, j)
    // comes from (zero, an E element, or a fed-back O value).
    routes_.assign(slots, InputRoute{});
    for (Index i = 0; i < N; ++i) {
        for (Index j = std::max(Index{0}, i - w + 1);
             j <= std::min(N - 1, i + w - 1); ++j) {
            PartPos pos = classify(i, j, w);
            IoSource src = composer_.inputSource(pos.k, pos.part);
            InputRoute &rt = routes_[bandIdx(i, j)];
            switch (src.kind) {
              case IoSource::Kind::Zero:
                rt.kind = InputRoute::Kind::Zero;
                break;
              case IoSource::Kind::FromE:
                rt.kind = InputRoute::Kind::FromE;
                rt.r = src.eRow * w + pos.il;
                rt.c = src.eCol * w + pos.jl;
                break;
              case IoSource::Kind::FromO: {
                auto [oi, oj] = oScalarCoords(src.oRow, src.oPart,
                                              pos.il, pos.jl, w);
                rt.kind = InputRoute::Kind::FromO;
                rt.irregular = src.irregular;
                rt.r = oi;
                rt.c = oj;
                // Feedback sources must themselves be O-band
                // positions (checked here so run() can index
                // directly).
                bandIdx(oi, oj);
                break;
              }
            }
        }
    }

    // Extraction routing: O scalar position -> padded C position.
    extract_row_.assign(slots, -1);
    extract_col_.assign(slots, -1);
    for (Index bi = 0; bi < d.nbar; ++bi) {
        for (Index bj = 0; bj < d.mbar; ++bj) {
            for (BandPart part : {BandPart::UDiag, BandPart::Diag,
                                  BandPart::LDiag}) {
                ExtractSource src = composer_.extractSource(bi, bj,
                                                            part);
                TriPart shape = part == BandPart::UDiag
                                    ? TriPart::UpperStrict
                                : part == BandPart::LDiag
                                    ? TriPart::LowerStrict
                                    : TriPart::DiagOnly;
                for (Index il = 0; il < w; ++il) {
                    for (Index jl = 0; jl < w; ++jl) {
                        if (!inTriPart(shape, il, jl))
                            continue;
                        auto [oi, oj] = oScalarCoords(src.oRow,
                                                      src.oPart, il,
                                                      jl, w);
                        std::size_t slot = bandIdx(oi, oj);
                        extract_row_[slot] = bi * w + il;
                        extract_col_[slot] = bj * w + jl;
                    }
                }
            }
        }
    }

    sched_ = HexIoSchedule::build(transform_.abar(),
                                  transform_.bbar());
}

MatMulExecResult
MatMulPlan::runBlockLevel(const Dense<Scalar> &e) const
{
    return execTransformedMatMul(transform_, e);
}

MatMulPlanResult
MatMulPlan::run(const Dense<Scalar> &e) const
{
    const MatMulDims &d = dims();
    const Index w = d.w;
    SAP_ASSERT(e.rows() == d.n && e.cols() == d.m,
               "E must be n×m = ", d.n, "x", d.m);
    Dense<Scalar> e_pad = e.paddedTo(d.nbar * w, d.mbar * w);

    auto feedback = std::make_shared<SpiralFeedback>(w);

    // Captured O values, keyed by bandIdx of the scalar position.
    struct Captured
    {
        Scalar value = 0;
        Cycle exit = 0;
        bool valid = false;
    };
    std::vector<Captured> captured(routes_.size());

    Dense<Scalar> c_pad(d.nbar * w, d.mbar * w);

    HexBandSpec spec;
    spec.abar = &transform_.abar();
    spec.bbar = &transform_.bbar();
    spec.inputValue = [&](Index i, Index j) -> Scalar {
        const InputRoute &rt = routes_[bandIdx(i, j)];
        switch (rt.kind) {
          case InputRoute::Kind::Zero:
            return 0;
          case InputRoute::Kind::FromE:
            return e_pad(rt.r, rt.c);
          case InputRoute::Kind::FromO: {
            const Captured &cap = captured[bandIdx(rt.r, rt.c)];
            SAP_ASSERT(cap.valid, "feedback for (", i, ",", j,
                       ") consumed before (", rt.r, ",", rt.c,
                       ") was produced");
            Cycle enter = i + j + std::max(i, j) + w - 1;
            feedback->recordTransfer(rt.c - rt.r, j - i, cap.exit,
                                     enter, rt.irregular);
            return cap.value;
          }
        }
        SAP_PANIC("unreachable");
    };
    spec.onOutput = [&](Index i, Index j, Scalar v, Cycle exit_cycle) {
        std::size_t slot = bandIdx(i, j);
        captured[slot] = {v, exit_cycle, true};
        if (extract_row_[slot] >= 0)
            c_pad(extract_row_[slot], extract_col_[slot]) = v;
    };

    HexRunResult hex = runHexBandMatMul(sched_, spec);
    SAP_ASSERT(feedback->topologyRespected(),
               "a feedback transfer left its spiral loop");

    MatMulPlanResult res;
    res.c = c_pad.topLeft(d.n, d.m);
    res.stats = hex.stats;
    res.totalCycles = hex.totalCycles;
    res.feedback = feedback;
    return res;
}

} // namespace sap
