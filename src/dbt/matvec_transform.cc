#include "dbt/matvec_transform.hh"

#include "base/logging.hh"
#include "base/math_util.hh"
#include "mat/triangular.hh"

namespace sap {

MatVecTransform::MatVecTransform(const Dense<Scalar> &a, Index w)
    : dims_{a.rows(), a.cols(), w,
            ceilDiv(a.rows(), w), ceilDiv(a.cols(), w)},
      partition_(a, w),
      abar_(dims_.barRows(), dims_.barCols(), /*sub=*/0, /*super=*/w - 1)
{
    const Index mbar = dims_.mbar;
    const Index blocks = dims_.blockCount();
    pairs_.reserve(blocks);

    // DBT-by-rows block selection (paper §2, rules a).
    for (Index k = 0; k < blocks; ++k) {
        Index r = k / mbar;
        Index s = k % mbar;
        Index s_next = (s + 1) % mbar;
        pairs_.push_back({r, s, r, s_next});
    }

    // Materialize the band: block row k holds Ū_k at block column k
    // (offsets 0..w-1-i per local row i) and L̄_k at block column k+1
    // (offsets w-i..w-1). Together they fill the whole band.
    for (Index k = 0; k < blocks; ++k) {
        const BlockPair &p = pairs_[k];
        Dense<Scalar> blk_u = partition_.block(p.uRow, p.uCol);
        Dense<Scalar> blk_l = partition_.block(p.lRow, p.lCol);
        for (Index i = 0; i < w; ++i) {
            Index row = k * w + i;
            for (Index j = i; j < w; ++j)          // U part, j >= i
                abar_.ref(row, k * w + j) = blk_u(i, j);
            for (Index j = 0; j < i; ++j)          // L part, j < i
                abar_.ref(row, (k + 1) * w + j) = blk_l(i, j);
        }
    }
}

BSource
MatVecTransform::bSourceOf(Index k) const
{
    SAP_ASSERT(k >= 0 && k < dims_.blockCount(), "block ", k,
               " out of range");
    return (k % dims_.mbar == 0) ? BSource::External : BSource::Feedback;
}

YSink
MatVecTransform::ySinkOf(Index k) const
{
    SAP_ASSERT(k >= 0 && k < dims_.blockCount(), "block ", k,
               " out of range");
    return ((k + 1) % dims_.mbar == 0) ? YSink::Emit
                                       : YSink::Recirculate;
}

Vec<Scalar>
MatVecTransform::transformX(const Vec<Scalar> &x) const
{
    SAP_ASSERT(x.size() == dims_.m, "x has ", x.size(),
               " elements, expected ", dims_.m);
    Vec<Scalar> xp = x.paddedTo(dims_.mbar * dims_.w);

    Vec<Scalar> xbar(dims_.barCols());
    Index pos = 0;
    for (Index k = 0; k < dims_.blockCount(); ++k) {
        Index s = k % dims_.mbar;
        for (Index t = 0; t < dims_.w; ++t)
            xbar[pos++] = xp[s * dims_.w + t];
    }
    // Tail x^∂: the first w-1 elements of the block that follows the
    // last L̄ (for DBT-by-rows this is x_0).
    Index s_tail = dims_.blockCount() % dims_.mbar; // == 0
    for (Index t = 0; t < dims_.w - 1; ++t)
        xbar[pos++] = xp[s_tail * dims_.w + t];
    SAP_ASSERT(pos == dims_.barCols(), "x̄ fill mismatch");
    return xbar;
}

bool
MatVecTransform::scalarIsExternalB(Index i) const
{
    SAP_ASSERT(i >= 0 && i < dims_.barRows(), "scalar row ", i,
               " out of range");
    return bSourceOf(i / dims_.w) == BSource::External;
}

Scalar
MatVecTransform::externalB(const Vec<Scalar> &b, Index i) const
{
    SAP_ASSERT(scalarIsExternalB(i), "row ", i, " is fed back");
    SAP_ASSERT(b.size() == dims_.n, "b has ", b.size(),
               " elements, expected ", dims_.n);
    Index k = i / dims_.w;
    Index t = i % dims_.w;
    Index r = k / dims_.mbar;
    Index src = r * dims_.w + t;
    // Padded rows take a zero initial value.
    return src < dims_.n ? b[src] : Scalar{0};
}

bool
MatVecTransform::scalarIsFinalY(Index i) const
{
    SAP_ASSERT(i >= 0 && i < dims_.barRows(), "scalar row ", i,
               " out of range");
    return ySinkOf(i / dims_.w) == YSink::Emit;
}

Index
MatVecTransform::finalYIndex(Index i) const
{
    SAP_ASSERT(scalarIsFinalY(i), "row ", i, " recirculates");
    Index k = i / dims_.w;
    Index t = i % dims_.w;
    Index r = k / dims_.mbar;
    return r * dims_.w + t;
}

Vec<Scalar>
MatVecTransform::extractY(const Vec<Scalar> &ybar) const
{
    SAP_ASSERT(ybar.size() == dims_.barRows(), "ȳ has ", ybar.size(),
               " elements, expected ", dims_.barRows());
    Vec<Scalar> y(dims_.n);
    for (Index i = 0; i < dims_.barRows(); ++i) {
        if (!scalarIsFinalY(i))
            continue;
        Index dst = finalYIndex(i);
        if (dst < dims_.n)
            y[dst] = ybar[i];
    }
    return y;
}

bool
MatVecTransform::validate(bool check_filled) const
{
    const Index blocks = dims_.blockCount();

    // Condition 1: Ū_k and L̄_k come from the same original block row.
    for (Index k = 0; k < blocks; ++k)
        if (pairs_[k].uRow != pairs_[k].lRow)
            return false;

    // Condition 2: L̄_k and Ū_{k+1} come from the same original block
    // column (they share the x sub-vector flowing between them).
    for (Index k = 0; k + 1 < blocks; ++k)
        if (pairs_[k].lCol != pairs_[k + 1].uCol)
            return false;

    // Condition 3: exactly one copy of every U_ij and every L_ij.
    std::vector<int> seen_u(blocks, 0), seen_l(blocks, 0);
    for (Index k = 0; k < blocks; ++k) {
        ++seen_u[pairs_[k].uRow * dims_.mbar + pairs_[k].uCol];
        ++seen_l[pairs_[k].lRow * dims_.mbar + pairs_[k].lCol];
    }
    for (Index q = 0; q < blocks; ++q)
        if (seen_u[q] != 1 || seen_l[q] != 1)
            return false;

    if (check_filled && !abar_.bandCompletelyFilled())
        return false;
    return true;
}

} // namespace sap
