#include "dbt/matmul_io.hh"

#include <set>

#include "base/logging.hh"

namespace sap {

std::string
bandPartName(BandPart part)
{
    switch (part) {
      case BandPart::USub:   return "U_{k,0}";
      case BandPart::LDiag:  return "L_{k,0}";
      case BandPart::Diag:   return "D_k";
      case BandPart::UDiag:  return "U_{k,1}";
      case BandPart::LSuper: return "L_{k,1}";
    }
    return "?";
}

IoComposer::IoComposer(const MatMulDims &dims) : dims_(dims) {}

IoSource
IoComposer::inputSource(Index k, BandPart part) const
{
    const Index K = dims_.blockCount();
    const Index pbar = dims_.pbar;
    const Index nbar = dims_.nbar;
    const Index mbar = dims_.mbar;
    const Index pn = pbar * nbar;
    const Index r = (k % pn) / pbar;
    const Index c = k / pn;

    IoSource src;
    switch (part) {
      case BandPart::USub:
        SAP_ASSERT(k >= 1 && k <= K, "U_{k,0} needs k in [1,K]");
        if (k % pn == 0) {
            // Closing hop of the U chain of C block (0, c−1): the
            // partial fed back from the end of that chain's regular
            // zig-zag (long delay when n̄ > 1).
            src.kind = IoSource::Kind::FromO;
            src.oRow = k - pbar * (nbar - 1) - 1;
            src.oPart = BandPart::UDiag;
            src.irregular = (nbar > 1);
        } else if (k % pbar == 0) {
            src.kind = IoSource::Kind::FromE;
            src.eRow = r;
            src.eCol = c;
        } else {
            src.kind = IoSource::Kind::FromO;
            src.oRow = k - 1;
            src.oPart = BandPart::UDiag;
        }
        return src;

      case BandPart::UDiag:
        SAP_ASSERT(k >= 0 && k <= K, "U_{k,1} needs k in [0,K]");
        if (k % pn == 0) {
            if (c >= mbar) { // the tail row: zero in, output discarded
                src.kind = IoSource::Kind::Zero;
            } else {
                src.kind = IoSource::Kind::FromE;
                src.eRow = 0;
                src.eCol = c;
            }
        } else {
            src.kind = IoSource::Kind::FromO;
            src.oRow = k;
            src.oPart = BandPart::USub;
        }
        return src;

      case BandPart::Diag:
        SAP_ASSERT(k >= 0 && k <= K, "D_k needs k in [0,K]");
        if (k % pbar == 0) {
            if (k == K) {
                src.kind = IoSource::Kind::Zero;
            } else {
                src.kind = IoSource::Kind::FromE;
                src.eRow = r;
                src.eCol = c;
            }
        } else {
            src.kind = IoSource::Kind::FromO;
            src.oRow = k - 1;
            src.oPart = BandPart::Diag;
        }
        return src;

      case BandPart::LDiag:
        SAP_ASSERT(k >= 0 && k <= K, "L_{k,0} needs k in [0,K]");
        if (k == K) {
            // Tail row: the diagonal-block output is discarded, so
            // its lower part takes no input.
            src.kind = IoSource::Kind::Zero;
        } else if ((k + pbar) % pn == 0 && k != pbar * (nbar - 1)) {
            // Chain start of C block (n̄−1, c) for c >= 1: resumes
            // from the early-materialized super-diagonal partial at
            // the end of copy c−1 (long delay when n̄ > 1).
            src.kind = IoSource::Kind::FromO;
            src.oRow = k - pbar * (nbar - 1) - 1;
            src.oPart = BandPart::LSuper;
            src.irregular = (nbar > 1);
        } else if (k % pbar == 0) {
            if (k == K) {
                src.kind = IoSource::Kind::Zero;
            } else {
                src.kind = IoSource::Kind::FromE;
                src.eRow = r;
                src.eCol = c;
            }
        } else {
            src.kind = IoSource::Kind::FromO;
            src.oRow = k - 1;
            src.oPart = BandPart::LSuper;
        }
        return src;

      case BandPart::LSuper:
        SAP_ASSERT(k >= 0 && k <= K - 1, "L_{k,1} needs k in [0,K-1]");
        if (k == K - 1 && mbar > 1) {
            // The global tail: the L chain of C block (n̄−1, 0)
            // resumes at the very end of the band (the B̄ tail L'
            // supplies its last product term).
            src.kind = IoSource::Kind::FromO;
            src.oRow = pbar * nbar - 1;
            src.oPart = BandPart::LDiag;
            src.irregular = true;
        } else if ((k + 1) % pn == 0 && k != K - 1) {
            // E injection for the chain of C block (n̄−1, c+1) whose
            // first product term materializes here, one copy early.
            src.kind = IoSource::Kind::FromE;
            src.eRow = nbar - 1;
            src.eCol = (k + 1) / pn;
        } else {
            src.kind = IoSource::Kind::FromO;
            src.oRow = k;
            src.oPart = BandPart::LDiag;
        }
        return src;
    }
    SAP_PANIC("unreachable");
}

ExtractSource
IoComposer::extractSource(Index i, Index j, BandPart part) const
{
    const Index pbar = dims_.pbar;
    const Index nbar = dims_.nbar;
    const Index pn = pbar * nbar;
    SAP_ASSERT(i >= 0 && i < nbar && j >= 0 && j < dims_.mbar,
               "C block (", i, ",", j, ") out of range");
    const Index k1 = (i + j * nbar + 1) * pbar - 1;

    switch (part) {
      case BandPart::UDiag: // the complete upper part of C_{i,j}
        if (i == 0)
            return {(j + 1) * pn, BandPart::USub};
        return {k1, BandPart::UDiag};
      case BandPart::Diag:
        return {k1, BandPart::Diag};
      case BandPart::LDiag: // the complete lower part of C_{i,j}
        if (i == nbar - 1 && j == 0)
            return {dims_.blockCount() - 1, BandPart::LSuper};
        if (i == nbar - 1)
            return {(j + 1) * pn - 1, BandPart::LDiag};
        return {k1, BandPart::LSuper};
      default:
        SAP_PANIC("extraction is queried per U/D/L class, got ",
                  bandPartName(part));
    }
}

bool
IoComposer::outputIsRecirculated(Index k, BandPart part) const
{
    const Index K = dims_.blockCount();
    const Index stride = dims_.pbar * (dims_.nbar - 1) + 1;

    // Enumerate the bounded candidate consumer slots and test each.
    struct Cand { Index k; BandPart part; };
    std::vector<Cand> cands;
    switch (part) {
      case BandPart::UDiag:
        cands.push_back({k + 1, BandPart::USub});
        cands.push_back({k + stride, BandPart::USub});
        break;
      case BandPart::USub:
        cands.push_back({k, BandPart::UDiag});
        break;
      case BandPart::Diag:
        cands.push_back({k + 1, BandPart::Diag});
        break;
      case BandPart::LSuper:
        cands.push_back({k + 1, BandPart::LDiag});
        cands.push_back({k + stride, BandPart::LDiag});
        break;
      case BandPart::LDiag:
        cands.push_back({k, BandPart::LSuper});
        cands.push_back({K - 1, BandPart::LSuper});
        break;
    }

    for (const Cand &cand : cands) {
        if (cand.k < 0 || cand.k > K)
            continue;
        if (cand.part == BandPart::LSuper && cand.k > K - 1)
            continue;
        if (cand.part == BandPart::USub && cand.k < 1)
            continue;
        IoSource src = inputSource(cand.k, cand.part);
        if (src.kind == IoSource::Kind::FromO && src.oRow == k &&
            src.oPart == part)
            return true;
    }
    return false;
}

bool
IoComposer::validate() const
{
    const Index K = dims_.blockCount();

    // Every FromO reference must name a slot that is computed
    // earlier in band order (row k' < k, or same row with the
    // within-row order USub -> {LDiag, Diag, UDiag} -> LSuper).
    auto stage = [](BandPart p) {
        switch (p) {
          case BandPart::USub: return 0;
          case BandPart::LDiag:
          case BandPart::Diag:
          case BandPart::UDiag: return 1;
          case BandPart::LSuper: return 2;
        }
        return 3;
    };
    // Consumption uniqueness: no O slot feeds two inputs.
    std::set<std::pair<Index, int>> consumed;

    auto visit = [&](Index k, BandPart part) -> bool {
        IoSource src = inputSource(k, part);
        if (src.kind != IoSource::Kind::FromO)
            return true;
        if (src.oRow < 0 || src.oRow > K)
            return false;
        bool earlier = src.oRow < k ||
                       (src.oRow == k &&
                        stage(src.oPart) < stage(part));
        if (!earlier)
            return false;
        auto key = std::make_pair(src.oRow,
                                  static_cast<int>(src.oPart));
        if (!consumed.insert(key).second)
            return false; // double consumption
        return true;
    };

    for (Index k = 0; k <= K; ++k) {
        if (k >= 1 && !visit(k, BandPart::USub))
            return false;
        if (!visit(k, BandPart::LDiag))
            return false;
        if (!visit(k, BandPart::Diag))
            return false;
        if (!visit(k, BandPart::UDiag))
            return false;
        if (k <= K - 1 && !visit(k, BandPart::LSuper))
            return false;
    }

    // Extraction uniqueness, and no extracted slot is also consumed.
    std::set<std::pair<Index, int>> extracted;
    for (Index i = 0; i < dims_.nbar; ++i) {
        for (Index j = 0; j < dims_.mbar; ++j) {
            for (BandPart part : {BandPart::UDiag, BandPart::Diag,
                                  BandPart::LDiag}) {
                ExtractSource e = extractSource(i, j, part);
                auto key = std::make_pair(e.oRow,
                                          static_cast<int>(e.oPart));
                if (!extracted.insert(key).second)
                    return false;
                if (consumed.count(key))
                    return false;
            }
        }
    }
    return true;
}

} // namespace sap
