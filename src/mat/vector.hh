/**
 * @file
 * Dense vector container plus the slice/concatenate helpers the DBT
 * vector transformations are built from.
 */

#ifndef SAP_MAT_VECTOR_HH
#define SAP_MAT_VECTOR_HH

#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace sap {

/**
 * Fixed-length numeric vector.
 *
 * Thin wrapper over std::vector with bounds-checked access and the
 * block operations (slice, concat, padding) used by the transformed
 * vectors x̄, b̄, ȳ of the paper.
 */
template <typename T = Scalar>
class Vec
{
  public:
    Vec() = default;

    /** @param n Length; elements value-initialized. */
    explicit Vec(Index n) : data_(static_cast<std::size_t>(n), T{})
    {
        SAP_ASSERT(n >= 0, "negative vector length");
    }

    /** Construct from an initializer list. */
    Vec(std::initializer_list<T> init) : data_(init) {}

    Index size() const { return static_cast<Index>(data_.size()); }

    T &
    operator[](Index i)
    {
        SAP_ASSERT(i >= 0 && i < size(), "index ", i, " out of ", size());
        return data_[static_cast<std::size_t>(i)];
    }

    const T &
    operator[](Index i) const
    {
        SAP_ASSERT(i >= 0 && i < size(), "index ", i, " out of ", size());
        return data_[static_cast<std::size_t>(i)];
    }

    /** Copy of elements [begin, begin+len). */
    Vec
    slice(Index begin, Index len) const
    {
        SAP_ASSERT(begin >= 0 && len >= 0 && begin + len <= size(),
                   "slice [", begin, ",", begin + len, ") out of ",
                   size());
        Vec out(len);
        for (Index i = 0; i < len; ++i)
            out[i] = (*this)[begin + i];
        return out;
    }

    /** Copy padded with T{} to the given length. */
    Vec
    paddedTo(Index n) const
    {
        SAP_ASSERT(n >= size(), "padding must not shrink");
        Vec out(n);
        for (Index i = 0; i < size(); ++i)
            out[i] = (*this)[i];
        return out;
    }

    /** Append all elements of @p other. */
    void
    append(const Vec &other)
    {
        data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    }

    /** Append a single element. */
    void push_back(const T &v) { data_.push_back(v); }

    bool operator==(const Vec &o) const { return data_ == o.data_; }

    /** Underlying storage. */
    const std::vector<T> &data() const { return data_; }

  private:
    std::vector<T> data_;
};

/** Largest absolute element-wise difference. */
template <typename T>
double
maxAbsDiff(const Vec<T> &a, const Vec<T> &b)
{
    SAP_ASSERT(a.size() == b.size(), "length mismatch in maxAbsDiff");
    double worst = 0.0;
    for (Index i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        if (d < 0)
            d = -d;
        if (d > worst)
            worst = d;
    }
    return worst;
}

} // namespace sap

#endif // SAP_MAT_VECTOR_HH
