/**
 * @file
 * Dense row-major matrix container.
 *
 * This is the substrate data structure the DBT transformation
 * consumes: a plain dense matrix of arbitrary (n, m) shape. The
 * container is templated on the element type so tests can use exact
 * integer arithmetic while simulations use doubles.
 */

#ifndef SAP_MAT_DENSE_HH
#define SAP_MAT_DENSE_HH

#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace sap {

/**
 * Row-major dense matrix.
 *
 * Invariants: rows() >= 0, cols() >= 0, storage size == rows*cols.
 */
template <typename T = Scalar>
class Dense
{
  public:
    /** Empty 0x0 matrix. */
    Dense() = default;

    /** @param rows,cols Shape; elements value-initialized to T{}. */
    Dense(Index rows, Index cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows * cols), T{})
    {
        SAP_ASSERT(rows >= 0 && cols >= 0, "negative dimension");
    }

    /** Shape accessors. */
    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** Element access with bounds assertion. */
    T &
    operator()(Index r, Index c)
    {
        SAP_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "index (", r, ",", c, ") out of ", rows_, "x", cols_);
        return data_[static_cast<std::size_t>(r * cols_ + c)];
    }

    /** @copydoc operator()(Index,Index) */
    const T &
    operator()(Index r, Index c) const
    {
        SAP_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "index (", r, ",", c, ") out of ", rows_, "x", cols_);
        return data_[static_cast<std::size_t>(r * cols_ + c)];
    }

    /** Raw storage access (row-major). */
    const std::vector<T> &data() const { return data_; }

    /** @return a new matrix that is the transpose of this one. */
    Dense
    transposed() const
    {
        Dense t(cols_, rows_);
        for (Index r = 0; r < rows_; ++r)
            for (Index c = 0; c < cols_; ++c)
                t(c, r) = (*this)(r, c);
        return t;
    }

    /**
     * Copy of this matrix padded with T{} to the given shape.
     *
     * @pre new_rows >= rows() and new_cols >= cols().
     */
    Dense
    paddedTo(Index new_rows, Index new_cols) const
    {
        SAP_ASSERT(new_rows >= rows_ && new_cols >= cols_,
                   "padding must not shrink the matrix");
        Dense p(new_rows, new_cols);
        for (Index r = 0; r < rows_; ++r)
            for (Index c = 0; c < cols_; ++c)
                p(r, c) = (*this)(r, c);
        return p;
    }

    /** Copy of the leading submatrix of the given shape. */
    Dense
    topLeft(Index new_rows, Index new_cols) const
    {
        SAP_ASSERT(new_rows <= rows_ && new_cols <= cols_,
                   "topLeft must not grow the matrix");
        Dense s(new_rows, new_cols);
        for (Index r = 0; r < new_rows; ++r)
            for (Index c = 0; c < new_cols; ++c)
                s(r, c) = (*this)(r, c);
        return s;
    }

    /** Exact element-wise equality (use for integer workloads). */
    bool
    operator==(const Dense &o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
    }

    /** True if every element equals T{}. */
    bool
    isZero() const
    {
        for (const T &v : data_)
            if (v != T{})
                return false;
        return true;
    }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<T> data_;
};

/** Largest absolute element-wise difference between two matrices. */
template <typename T>
double
maxAbsDiff(const Dense<T> &a, const Dense<T> &b)
{
    SAP_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
               "shape mismatch in maxAbsDiff");
    double worst = 0.0;
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index c = 0; c < a.cols(); ++c) {
            double d = static_cast<double>(a(r, c)) -
                       static_cast<double>(b(r, c));
            if (d < 0)
                d = -d;
            if (d > worst)
                worst = d;
        }
    }
    return worst;
}

} // namespace sap

#endif // SAP_MAT_DENSE_HH
