/**
 * @file
 * Deterministic workload generators for tests and benchmarks.
 *
 * Integer-valued generators produce entries in small ranges so that
 * all systolic computations are exact in double precision (every
 * intermediate fits in the 53-bit mantissa), letting tests require
 * bit-exact equality with the oracle.
 */

#ifndef SAP_MAT_GENERATE_HH
#define SAP_MAT_GENERATE_HH

#include <cstdint>

#include "base/random.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/**
 * Dense matrix with uniform integer entries in [lo, hi], stored as
 * Scalar (double). Entries are guaranteed nonzero when lo > 0.
 */
Dense<Scalar> randomIntDense(Index rows, Index cols, std::uint64_t seed,
                             Index lo = 1, Index hi = 9);

/** Vector with uniform integer entries in [lo, hi]. */
Vec<Scalar> randomIntVec(Index n, std::uint64_t seed, Index lo = 1,
                         Index hi = 9);

/** Dense matrix with uniform real entries in [lo, hi). */
Dense<Scalar> randomRealDense(Index rows, Index cols, std::uint64_t seed,
                              double lo = -1.0, double hi = 1.0);

/**
 * Block-sparse matrix: a dense matrix whose w-by-w blocks are
 * entirely zero with probability @p zero_prob; surviving blocks are
 * filled with nonzero integers. Exercises the sparsity-aware DBT of
 * the paper's conclusions.
 */
Dense<Scalar> randomBlockSparse(Index rows, Index cols, Index w,
                                double zero_prob, std::uint64_t seed);

/**
 * Sequential "coordinate-coded" matrix: entry (i, j) equals
 * (i+1)*1000 + (j+1). Every entry is distinct and nonzero, which
 * makes structural tests (who-went-where) self-describing.
 */
Dense<Scalar> coordinateCoded(Index rows, Index cols);

/** Lower-triangular matrix with nonzero integer diagonal. */
Dense<Scalar> randomLowerTriangular(Index n, std::uint64_t seed);

/**
 * Unit lower-triangular matrix (diagonal 1, small integer strict
 * lower triangle): every forward-substitution intermediate stays an
 * exact integer, so triangular-solve tests can require bit-exact
 * equality with the oracle despite the divisions.
 */
Dense<Scalar> randomUnitLowerTriangular(Index n, std::uint64_t seed);

/**
 * Strictly diagonally dominant matrix (integer entries), suitable
 * for Gauss-Seidel convergence tests.
 */
Dense<Scalar> randomDiagDominant(Index n, std::uint64_t seed);

} // namespace sap

#endif // SAP_MAT_GENERATE_HH
