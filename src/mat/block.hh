/**
 * @file
 * Block partitioning of dense matrices (§2.a of the paper): split
 * A(n, m) into n̄·m̄ submatrices of w-by-w, padding with zero rows
 * and/or columns when n or m is not an integer multiple of w.
 */

#ifndef SAP_MAT_BLOCK_HH
#define SAP_MAT_BLOCK_HH

#include "base/logging.hh"
#include "base/math_util.hh"
#include "mat/dense.hh"

namespace sap {

/**
 * Fixed-w block view over a (padded copy of a) dense matrix.
 *
 * Provides w-by-w block extraction/insertion with the zero padding
 * the paper prescribes. The partition owns a padded copy so the
 * original matrix is never mutated.
 */
template <typename T = Scalar>
class BlockPartition
{
  public:
    /**
     * @param a Original dense matrix (any shape).
     * @param w Block size (= systolic array size), w >= 1.
     */
    BlockPartition(const Dense<T> &a, Index w)
        : w_(w),
          orig_rows_(a.rows()), orig_cols_(a.cols()),
          nbar_(ceilDiv(a.rows(), w)), mbar_(ceilDiv(a.cols(), w)),
          padded_(a.paddedTo(roundUp(a.rows(), w), roundUp(a.cols(), w)))
    {
        SAP_ASSERT(w >= 1, "block size must be >= 1");
        SAP_ASSERT(a.rows() >= 1 && a.cols() >= 1,
                   "cannot partition an empty matrix");
    }

    /** Block size w. */
    Index w() const { return w_; }
    /** Number of block rows n̄ = ceil(n/w). */
    Index blockRows() const { return nbar_; }
    /** Number of block cols m̄ = ceil(m/w). */
    Index blockCols() const { return mbar_; }
    /** Original (unpadded) shape. */
    Index origRows() const { return orig_rows_; }
    /** @copydoc origRows() */
    Index origCols() const { return orig_cols_; }
    /** Padded shape. */
    Index paddedRows() const { return nbar_ * w_; }
    /** @copydoc paddedRows() */
    Index paddedCols() const { return mbar_ * w_; }

    /** The zero-padded matrix. */
    const Dense<T> &padded() const { return padded_; }

    /** Copy of block (i, j) as a w-by-w dense matrix. */
    Dense<T>
    block(Index i, Index j) const
    {
        SAP_ASSERT(i >= 0 && i < nbar_ && j >= 0 && j < mbar_,
                   "block (", i, ",", j, ") out of ", nbar_, "x", mbar_);
        Dense<T> b(w_, w_);
        for (Index r = 0; r < w_; ++r)
            for (Index c = 0; c < w_; ++c)
                b(r, c) = padded_(i * w_ + r, j * w_ + c);
        return b;
    }

    /** True if block (i, j) is entirely zero (sparsity-aware DBT). */
    bool
    blockIsZero(Index i, Index j) const
    {
        for (Index r = 0; r < w_; ++r)
            for (Index c = 0; c < w_; ++c)
                if (padded_(i * w_ + r, j * w_ + c) != T{})
                    return false;
        return true;
    }

  private:
    Index w_;
    Index orig_rows_, orig_cols_;
    Index nbar_, mbar_;
    Dense<T> padded_;
};

} // namespace sap

#endif // SAP_MAT_BLOCK_HH
