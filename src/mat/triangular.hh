/**
 * @file
 * Triangular block splitting — the primitive operation of the DBT
 * transformation (§2.b of the paper): every w-by-w block A_ij is
 * split into an upper-triangular part U_ij (including the main
 * diagonal) and a strictly lower-triangular part L_ij.
 */

#ifndef SAP_MAT_TRIANGULAR_HH
#define SAP_MAT_TRIANGULAR_HH

#include <utility>

#include "base/logging.hh"
#include "mat/dense.hh"

namespace sap {

/** Which triangular part of a square block to take. */
enum class TriPart
{
    /** Upper triangle including the main diagonal: j >= i. */
    UpperWithDiag,
    /** Strictly upper triangle: j > i. */
    UpperStrict,
    /** Lower triangle including the main diagonal: j <= i. */
    LowerWithDiag,
    /** Strictly lower triangle: j < i. */
    LowerStrict,
    /** Main diagonal only: j == i. */
    DiagOnly,
};

/** @return true if (i, j) belongs to the given triangular part. */
constexpr bool
inTriPart(TriPart part, Index i, Index j)
{
    switch (part) {
      case TriPart::UpperWithDiag: return j >= i;
      case TriPart::UpperStrict:   return j > i;
      case TriPart::LowerWithDiag: return j <= i;
      case TriPart::LowerStrict:   return j < i;
      case TriPart::DiagOnly:      return j == i;
    }
    return false;
}

/** Copy of @p block with elements outside @p part zeroed. */
template <typename T>
Dense<T>
triPartOf(const Dense<T> &block, TriPart part)
{
    SAP_ASSERT(block.rows() == block.cols(),
               "triangular split needs a square block");
    Dense<T> out(block.rows(), block.cols());
    for (Index i = 0; i < block.rows(); ++i)
        for (Index j = 0; j < block.cols(); ++j)
            if (inTriPart(part, i, j))
                out(i, j) = block(i, j);
    return out;
}

/**
 * Split a square block into (U, L) per the paper's convention:
 * U holds the main diagonal, L is strictly lower.
 */
template <typename T>
std::pair<Dense<T>, Dense<T>>
splitUL(const Dense<T> &block)
{
    return {triPartOf(block, TriPart::UpperWithDiag),
            triPartOf(block, TriPart::LowerStrict)};
}

/** @return true if @p block is zero outside @p part. */
template <typename T>
bool
conformsToTriPart(const Dense<T> &block, TriPart part)
{
    if (block.rows() != block.cols())
        return false;
    for (Index i = 0; i < block.rows(); ++i)
        for (Index j = 0; j < block.cols(); ++j)
            if (!inTriPart(part, i, j) && block(i, j) != T{})
                return false;
    return true;
}

} // namespace sap

#endif // SAP_MAT_TRIANGULAR_HH
