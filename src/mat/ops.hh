/**
 * @file
 * Reference ("oracle") linear-algebra operations.
 *
 * Every systolic result in the repository is validated against these
 * straightforward host implementations. They are intentionally naive
 * and obviously correct.
 */

#ifndef SAP_MAT_OPS_HH
#define SAP_MAT_OPS_HH

#include "base/logging.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** y = A*x + b (shapes: A n-by-m, x m, b n). */
template <typename T>
Vec<T>
matVec(const Dense<T> &a, const Vec<T> &x, const Vec<T> &b)
{
    SAP_ASSERT(a.cols() == x.size(), "A cols ", a.cols(),
               " != x size ", x.size());
    SAP_ASSERT(a.rows() == b.size(), "A rows ", a.rows(),
               " != b size ", b.size());
    Vec<T> y(a.rows());
    for (Index i = 0; i < a.rows(); ++i) {
        T acc = b[i];
        for (Index j = 0; j < a.cols(); ++j)
            acc += a(i, j) * x[j];
        y[i] = acc;
    }
    return y;
}

/** C = A*B (shapes: A n-by-p, B p-by-m). */
template <typename T>
Dense<T>
matMul(const Dense<T> &a, const Dense<T> &b)
{
    SAP_ASSERT(a.cols() == b.rows(), "A cols ", a.cols(),
               " != B rows ", b.rows());
    Dense<T> c(a.rows(), b.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index k = 0; k < a.cols(); ++k) {
            T aik = a(i, k);
            if (aik == T{})
                continue;
            for (Index j = 0; j < b.cols(); ++j)
                c(i, j) += aik * b(k, j);
        }
    }
    return c;
}

/** C = A*B + E. */
template <typename T>
Dense<T>
matMulAdd(const Dense<T> &a, const Dense<T> &b, const Dense<T> &e)
{
    Dense<T> c = matMul(a, b);
    SAP_ASSERT(c.rows() == e.rows() && c.cols() == e.cols(),
               "E shape mismatch");
    for (Index i = 0; i < c.rows(); ++i)
        for (Index j = 0; j < c.cols(); ++j)
            c(i, j) += e(i, j);
    return c;
}

/** Element-wise sum. */
template <typename T>
Dense<T>
add(const Dense<T> &a, const Dense<T> &b)
{
    SAP_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
               "shape mismatch in add");
    Dense<T> c(a.rows(), a.cols());
    for (Index i = 0; i < a.rows(); ++i)
        for (Index j = 0; j < a.cols(); ++j)
            c(i, j) = a(i, j) + b(i, j);
    return c;
}

/**
 * Solve L*x = b by forward substitution.
 *
 * @pre L is square lower-triangular with nonzero diagonal.
 */
template <typename T>
Vec<T>
forwardSolve(const Dense<T> &l, const Vec<T> &b)
{
    SAP_ASSERT(l.rows() == l.cols(), "L must be square");
    SAP_ASSERT(l.rows() == b.size(), "shape mismatch");
    Vec<T> x(b.size());
    for (Index i = 0; i < l.rows(); ++i) {
        T acc = b[i];
        for (Index j = 0; j < i; ++j)
            acc -= l(i, j) * x[j];
        SAP_ASSERT(l(i, i) != T{}, "zero diagonal at ", i);
        x[i] = acc / l(i, i);
    }
    return x;
}

/** Identity matrix of order n. */
template <typename T>
Dense<T>
identity(Index n)
{
    Dense<T> id(n, n);
    for (Index i = 0; i < n; ++i)
        id(i, i) = T{1};
    return id;
}

/** Frobenius-style max-norm of A - B (declared in dense.hh as
 *  maxAbsDiff; re-exported here for discoverability). */

} // namespace sap

#endif // SAP_MAT_OPS_HH
