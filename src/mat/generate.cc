#include "mat/generate.hh"

#include <cmath>

#include "base/math_util.hh"

namespace sap {

Dense<Scalar>
randomIntDense(Index rows, Index cols, std::uint64_t seed, Index lo,
               Index hi)
{
    Rng rng(seed);
    Dense<Scalar> a(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; ++c)
            a(r, c) = static_cast<Scalar>(rng.uniformInt(lo, hi));
    return a;
}

Vec<Scalar>
randomIntVec(Index n, std::uint64_t seed, Index lo, Index hi)
{
    Rng rng(seed);
    Vec<Scalar> v(n);
    for (Index i = 0; i < n; ++i)
        v[i] = static_cast<Scalar>(rng.uniformInt(lo, hi));
    return v;
}

Dense<Scalar>
randomRealDense(Index rows, Index cols, std::uint64_t seed, double lo,
                double hi)
{
    Rng rng(seed);
    Dense<Scalar> a(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; ++c)
            a(r, c) = rng.uniformReal(lo, hi);
    return a;
}

Dense<Scalar>
randomBlockSparse(Index rows, Index cols, Index w, double zero_prob,
                  std::uint64_t seed)
{
    Rng rng(seed);
    Dense<Scalar> a(rows, cols);
    Index nbar = ceilDiv(rows, w);
    Index mbar = ceilDiv(cols, w);
    for (Index bi = 0; bi < nbar; ++bi) {
        for (Index bj = 0; bj < mbar; ++bj) {
            if (rng.bernoulli(zero_prob))
                continue; // whole block stays zero
            for (Index r = bi * w; r < std::min((bi + 1) * w, rows); ++r)
                for (Index c = bj * w; c < std::min((bj + 1) * w, cols);
                     ++c)
                    a(r, c) = static_cast<Scalar>(rng.uniformInt(1, 9));
        }
    }
    return a;
}

Dense<Scalar>
coordinateCoded(Index rows, Index cols)
{
    Dense<Scalar> a(rows, cols);
    for (Index r = 0; r < rows; ++r)
        for (Index c = 0; c < cols; ++c)
            a(r, c) = static_cast<Scalar>((r + 1) * 1000 + (c + 1));
    return a;
}

Dense<Scalar>
randomLowerTriangular(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    Dense<Scalar> l(n, n);
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < i; ++j)
            l(i, j) = static_cast<Scalar>(rng.uniformInt(1, 5));
        l(i, i) = static_cast<Scalar>(rng.uniformInt(1, 4));
    }
    return l;
}

Dense<Scalar>
randomUnitLowerTriangular(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    Dense<Scalar> l(n, n);
    for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < i; ++j)
            l(i, j) = static_cast<Scalar>(rng.uniformInt(0, 3));
        l(i, i) = 1;
    }
    return l;
}

Dense<Scalar>
randomDiagDominant(Index n, std::uint64_t seed)
{
    Rng rng(seed);
    Dense<Scalar> a(n, n);
    for (Index i = 0; i < n; ++i) {
        Scalar row_sum = 0;
        for (Index j = 0; j < n; ++j) {
            if (j == i)
                continue;
            a(i, j) = static_cast<Scalar>(rng.uniformInt(0, 3));
            row_sum += std::abs(a(i, j));
        }
        a(i, i) = row_sum + static_cast<Scalar>(rng.uniformInt(1, 4));
    }
    return a;
}

} // namespace sap
