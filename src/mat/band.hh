/**
 * @file
 * Band matrix container.
 *
 * The transformed matrices Ā and B̄ of the paper are band matrices
 * whose bandwidth equals the systolic array size w. The container
 * stores only the band diagonals, addressed by (row, offset) where
 * offset = col - row, offset in [-sub(), +super()].
 */

#ifndef SAP_MAT_BAND_HH
#define SAP_MAT_BAND_HH

#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "mat/dense.hh"

namespace sap {

/**
 * Rectangular band matrix with `sub` sub-diagonals and `super`
 * super-diagonals (total bandwidth sub + super + 1).
 *
 * Elements outside the band read as T{} and must not be written.
 */
template <typename T = Scalar>
class Band
{
  public:
    Band() = default;

    /**
     * @param rows,cols Logical matrix shape.
     * @param sub Number of sub-diagonals (offsets -1..-sub).
     * @param super Number of super-diagonals (offsets +1..+super).
     */
    Band(Index rows, Index cols, Index sub, Index super)
        : rows_(rows), cols_(cols), sub_(sub), super_(super),
          width_(sub + super + 1),
          data_(static_cast<std::size_t>(rows * width_), T{})
    {
        SAP_ASSERT(rows >= 0 && cols >= 0, "negative dimension");
        SAP_ASSERT(sub >= 0 && super >= 0, "negative band extent");
    }

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    /** Number of sub-diagonals. */
    Index sub() const { return sub_; }
    /** Number of super-diagonals. */
    Index super() const { return super_; }
    /** Total bandwidth = sub + super + 1. */
    Index bandwidth() const { return width_; }

    /** True if (r, c) is inside the matrix and inside the band. */
    bool
    inBand(Index r, Index c) const
    {
        if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
            return false;
        Index off = c - r;
        return off >= -sub_ && off <= super_;
    }

    /** Read element (r, c); zero outside the band. */
    T
    at(Index r, Index c) const
    {
        SAP_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "index (", r, ",", c, ") out of ", rows_, "x", cols_);
        Index off = c - r;
        if (off < -sub_ || off > super_)
            return T{};
        return data_[slot(r, off)];
    }

    /** Mutable reference to an in-band element. */
    T &
    ref(Index r, Index c)
    {
        SAP_ASSERT(inBand(r, c), "(", r, ",", c, ") outside band");
        return data_[slot(r, c - r)];
    }

    /** Expand to a dense matrix (zeros outside the band). */
    Dense<T>
    toDense() const
    {
        Dense<T> d(rows_, cols_);
        for (Index r = 0; r < rows_; ++r) {
            for (Index off = -sub_; off <= super_; ++off) {
                Index c = r + off;
                if (c >= 0 && c < cols_)
                    d(r, c) = data_[slot(r, off)];
            }
        }
        return d;
    }

    /**
     * True if every in-matrix band position holds a nonzero value.
     *
     * This is the paper's "the transformed matrix band is filled (no
     * empty position)" property; meaningful only for workloads whose
     * generator guarantees nonzero entries.
     */
    bool
    bandCompletelyFilled() const
    {
        for (Index r = 0; r < rows_; ++r) {
            for (Index off = -sub_; off <= super_; ++off) {
                Index c = r + off;
                if (c < 0 || c >= cols_)
                    continue;
                if (data_[slot(r, off)] == T{})
                    return false;
            }
        }
        return true;
    }

    /** Count of in-matrix band positions (the array work slots). */
    Index
    bandPositionCount() const
    {
        Index count = 0;
        for (Index r = 0; r < rows_; ++r) {
            for (Index off = -sub_; off <= super_; ++off) {
                Index c = r + off;
                if (c >= 0 && c < cols_)
                    ++count;
            }
        }
        return count;
    }

  private:
    /** Storage slot for (row, offset). */
    std::size_t
    slot(Index r, Index off) const
    {
        return static_cast<std::size_t>(r * width_ + (off + sub_));
    }

    Index rows_ = 0;
    Index cols_ = 0;
    Index sub_ = 0;
    Index super_ = 0;
    Index width_ = 1;
    std::vector<T> data_;
};

} // namespace sap

#endif // SAP_MAT_BAND_HH
