/**
 * @file
 * Structure dumps and pretty printers.
 *
 * The paper's figures 1, 2 and 4 are *structural* drawings (which
 * triangular block sits where in the band). These helpers render the
 * equivalent ASCII pictures, which the figure benchmarks print and
 * the golden tests compare against.
 */

#ifndef SAP_MAT_IO_HH
#define SAP_MAT_IO_HH

#include <string>

#include "mat/band.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"

namespace sap {

/** Render a dense matrix with fixed column width. */
std::string toString(const Dense<Scalar> &a, int decimals = 0);

/** Render a vector on one line. */
std::string toString(const Vec<Scalar> &v, int decimals = 0);

/**
 * Render the *occupancy* pattern of a matrix: '#' for nonzero, '.'
 * for zero. Visualizes triangular block layouts (Figs. 1, 2, 4).
 */
std::string occupancyPicture(const Dense<Scalar> &a);

/** Occupancy picture of a band matrix expanded to dense. */
std::string occupancyPicture(const Band<Scalar> &a);

} // namespace sap

#endif // SAP_MAT_IO_HH
