#include "mat/io.hh"

#include "base/string_util.hh"

namespace sap {

std::string
toString(const Dense<Scalar> &a, int decimals)
{
    // First pass: column width.
    std::size_t width = 1;
    for (Index r = 0; r < a.rows(); ++r)
        for (Index c = 0; c < a.cols(); ++c)
            width = std::max(width,
                             formatReal(a(r, c), decimals).size());

    std::string out;
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index c = 0; c < a.cols(); ++c) {
            out += padLeft(formatReal(a(r, c), decimals), width);
            if (c + 1 < a.cols())
                out += ' ';
        }
        out += '\n';
    }
    return out;
}

std::string
toString(const Vec<Scalar> &v, int decimals)
{
    std::string out = "[";
    for (Index i = 0; i < v.size(); ++i) {
        out += formatReal(v[i], decimals);
        if (i + 1 < v.size())
            out += ' ';
    }
    out += "]";
    return out;
}

std::string
occupancyPicture(const Dense<Scalar> &a)
{
    std::string out;
    for (Index r = 0; r < a.rows(); ++r) {
        for (Index c = 0; c < a.cols(); ++c)
            out += (a(r, c) != 0 ? '#' : '.');
        out += '\n';
    }
    return out;
}

std::string
occupancyPicture(const Band<Scalar> &a)
{
    return occupancyPicture(a.toDense());
}

} // namespace sap
