#include "mat/ops.hh"

// Template implementations live in the header; this translation unit
// anchors the component in the build.
