/**
 * @file
 * Status/error reporting facilities, modeled after gem5's logging
 * conventions.
 *
 * Severity policy:
 *  - panic():  an internal invariant of the library is broken (a bug
 *              in this code base). Aborts so a debugger/core dump can
 *              capture the state.
 *  - fatal():  the *user* asked for something impossible (bad sizes,
 *              inconsistent configuration). Exits with status 1.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): purely informational progress/status output.
 */

#ifndef SAP_BASE_LOGGING_HH
#define SAP_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace sap {

/** Internal helpers; use the macros below instead. */
namespace logging_detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate a list of stream-printable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace logging_detail

} // namespace sap

/** Report an internal library bug and abort. */
#define SAP_PANIC(...)                                                  \
    ::sap::logging_detail::panicImpl(                                   \
        __FILE__, __LINE__, ::sap::logging_detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define SAP_FATAL(...)                                                  \
    ::sap::logging_detail::fatalImpl(                                   \
        __FILE__, __LINE__, ::sap::logging_detail::concat(__VA_ARGS__))

/** Print a warning; execution continues. */
#define SAP_WARN(...)                                                   \
    ::sap::logging_detail::warnImpl(                                    \
        ::sap::logging_detail::concat(__VA_ARGS__))

/** Print an informational message. */
#define SAP_INFORM(...)                                                 \
    ::sap::logging_detail::informImpl(                                  \
        ::sap::logging_detail::concat(__VA_ARGS__))

/**
 * Invariant check that stays on in release builds.
 *
 * Used for cheap structural invariants (index bounds, schedule
 * consistency). Violations are library bugs, hence panic semantics.
 */
#define SAP_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            SAP_PANIC("assertion failed: ", #cond, ": ",                \
                      ::sap::logging_detail::concat(__VA_ARGS__));      \
        }                                                               \
    } while (0)

#endif // SAP_BASE_LOGGING_HH
