/**
 * @file
 * Status/error reporting facilities, modeled after gem5's logging
 * conventions, plus leveled structured logging for the long-running
 * serving layers.
 *
 * Severity policy:
 *  - panic():  an internal invariant of the library is broken (a bug
 *              in this code base). Aborts so a debugger/core dump can
 *              capture the state.
 *  - fatal():  the *user* asked for something impossible (bad sizes,
 *              inconsistent configuration). Exits with status 1.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): purely informational progress/status output.
 *
 * Leveled logging (SAP_LOG_ERROR/WARN/INFO/DEBUG): every line goes to
 * stderr prefixed with a wall-clock timestamp, the monotonic seconds
 * since process start, a small per-thread id, and the level — so logs
 * from the multi-threaded net/cluster/serve stack line up with trace
 * timestamps (src/obs/) without a separate correlation step. The
 * threshold comes from the SAP_LOG environment variable
 * ("error"/"warn"/"info"/"debug", default "info") and can be
 * overridden programmatically with setLogLevel(). Messages below the
 * threshold cost one relaxed atomic load and nothing else.
 */

#ifndef SAP_BASE_LOGGING_HH
#define SAP_BASE_LOGGING_HH

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sap {

/** Leveled-log severities, in decreasing order of urgency. */
enum class LogLevel : int
{
    Error = 0, ///< the operation failed; the process continues
    Warn = 1,  ///< suspicious, worth a look, not a failure
    Info = 2,  ///< lifecycle events (listening, shutdown, ...)
    Debug = 3, ///< per-connection / per-request detail
};

/** Printable level name ("error"/"warn"/"info"/"debug"). */
const char *logLevelName(LogLevel level);

/**
 * Parse a level name as accepted in SAP_LOG.
 * @return true and set @p out on success; false on an unknown name.
 */
bool parseLogLevel(const std::string &name, LogLevel *out);

/** The active threshold (SAP_LOG at first use, else Info). */
LogLevel logLevel();

/** Override the threshold (tests, CLIs with a --verbose flag). */
void setLogLevel(LogLevel level);

/**
 * Tee leveled log lines to @p path (opened in append mode) in
 * addition to stderr, so long-running servers keep logs without
 * shell redirection. Lines are written with one stdio call each
 * under a lock, so concurrent threads never interleave within a
 * line. An empty @p path closes the current file and stops teeing.
 * First use also honors the SAP_LOG_FILE environment variable.
 *
 * @return true on success; false when the file could not be opened
 * (logging continues on stderr alone).
 */
bool setLogFile(const std::string &path);

/** True when a message at @p level would be emitted. */
bool logEnabled(LogLevel level);

/**
 * Small dense id of the calling thread (1, 2, 3... in first-use
 * order): stable for the thread's lifetime, cheap to read, and far
 * more legible in logs and trace exports than std::thread::id.
 */
std::uint32_t currentThreadId();

/** Monotonic seconds since process start (the log line timebase). */
double monotonicSeconds();

/** Internal helpers; use the macros below instead. */
namespace logging_detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** One structured line to stderr; the level gate already passed. */
void logImpl(LogLevel level, const std::string &msg);

/** Concatenate a list of stream-printable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace logging_detail

} // namespace sap

/** Report an internal library bug and abort. */
#define SAP_PANIC(...)                                                  \
    ::sap::logging_detail::panicImpl(                                   \
        __FILE__, __LINE__, ::sap::logging_detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define SAP_FATAL(...)                                                  \
    ::sap::logging_detail::fatalImpl(                                   \
        __FILE__, __LINE__, ::sap::logging_detail::concat(__VA_ARGS__))

/** Print a warning; execution continues. */
#define SAP_WARN(...)                                                   \
    ::sap::logging_detail::warnImpl(                                    \
        ::sap::logging_detail::concat(__VA_ARGS__))

/** Print an informational message. */
#define SAP_INFORM(...)                                                 \
    ::sap::logging_detail::informImpl(                                  \
        ::sap::logging_detail::concat(__VA_ARGS__))

/** One structured log line, emitted only when @p level is enabled.
 *  Arguments are not evaluated below the threshold. */
#define SAP_LOG(level, ...)                                             \
    do {                                                                \
        if (::sap::logEnabled(level)) {                                 \
            ::sap::logging_detail::logImpl(                             \
                level, ::sap::logging_detail::concat(__VA_ARGS__));     \
        }                                                               \
    } while (0)

#define SAP_LOG_ERROR(...) SAP_LOG(::sap::LogLevel::Error, __VA_ARGS__)
#define SAP_LOG_WARN(...) SAP_LOG(::sap::LogLevel::Warn, __VA_ARGS__)
#define SAP_LOG_INFO(...) SAP_LOG(::sap::LogLevel::Info, __VA_ARGS__)
#define SAP_LOG_DEBUG(...) SAP_LOG(::sap::LogLevel::Debug, __VA_ARGS__)

/**
 * Invariant check that stays on in release builds.
 *
 * Used for cheap structural invariants (index bounds, schedule
 * consistency). Violations are library bugs, hence panic semantics.
 */
#define SAP_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            SAP_PANIC("assertion failed: ", #cond, ": ",                \
                      ::sap::logging_detail::concat(__VA_ARGS__));      \
        }                                                               \
    } while (0)

#endif // SAP_BASE_LOGGING_HH
