#include "base/random.hh"

// Header-only for now; this translation unit anchors the component in
// the build so future non-inline additions have a home.
