/**
 * @file
 * Recoverable error type for the library's user-facing seams.
 *
 * SAP_ASSERT/SAP_PANIC (base/logging.hh) guard *internal* invariants
 * and abort: a violated schedule or a corrupt plan is a bug, not an
 * input. Malformed *inputs* — bad shapes handed to a plan factory, a
 * zero diagonal in a triangular system, an execution-mode/option
 * combination the engine cannot honor — are the caller's to handle,
 * so they throw EngineError instead. The serving layer catches it at
 * the request boundary and turns it into an error response; library
 * callers catch it like any std::runtime_error.
 *
 * Lives in base/ (not engine/) because the plan classes below the
 * engine layer (solve/trisolve_plan.hh) throw it too.
 */

#ifndef SAP_BASE_ERROR_HH
#define SAP_BASE_ERROR_HH

#include <stdexcept>
#include <string>

namespace sap {

/** Recoverable, caller-visible failure: bad input or bad request. */
class EngineError : public std::runtime_error
{
  public:
    explicit EngineError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

} // namespace sap

#endif // SAP_BASE_ERROR_HH
