#include "base/string_util.hh"

#include <cstdio>

namespace sap {

std::string
formatReal(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return std::string(buf);
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace sap
