/**
 * @file
 * Plain-text table rendering for benchmark reports.
 *
 * Every reproduction benchmark prints its figure/table in this
 * format so the regenerated evaluation is easy to diff against
 * EXPERIMENTS.md.
 */

#ifndef SAP_BASE_TABLE_HH
#define SAP_BASE_TABLE_HH

#include <initializer_list>
#include <string>
#include <vector>

namespace sap {

/**
 * Column-aligned ASCII table builder.
 *
 * Usage:
 * @code
 *   Table t({"w", "T measured", "T paper"});
 *   t.addRow({"3", "39", "39"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /** @param headers Column titles; fixes the column count. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have exactly the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with aligned columns, header underline, trailing \n. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sap

#endif // SAP_BASE_TABLE_HH
