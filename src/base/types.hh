/**
 * @file
 * Fundamental scalar and index types shared across the library.
 */

#ifndef SAP_BASE_TYPES_HH
#define SAP_BASE_TYPES_HH

#include <cstdint>

namespace sap {

/** Default numeric element type for matrices and array data paths. */
using Scalar = double;

/**
 * Signed index type for matrix dimensions and systolic cycle counts.
 *
 * Signed so that band offsets (which are negative on sub-diagonals)
 * and "one before the first cycle" sentinels are representable
 * without casts.
 */
using Index = std::int64_t;

/** Simulated clock cycle number (0-based). */
using Cycle = std::int64_t;

} // namespace sap

#endif // SAP_BASE_TYPES_HH
