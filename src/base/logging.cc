#include "base/logging.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace sap {

namespace {

/** The optional log-file sink (SAP_LOG_FILE / setLogFile). */
std::mutex g_log_file_mutex;
std::FILE *g_log_file = nullptr;          // guarded by g_log_file_mutex
std::atomic<bool> g_log_file_env_checked{false};

/** Open @p path for append; returns false (stderr-only) on failure. */
bool
openLogFileLocked(const std::string &path)
{
    if (g_log_file) {
        std::fclose(g_log_file);
        g_log_file = nullptr;
    }
    if (path.empty())
        return true;
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f) {
        std::fprintf(stderr,
                     "warn: cannot open SAP_LOG_FILE \"%s\"; "
                     "logging to stderr only\n",
                     path.c_str());
        return false;
    }
    g_log_file = f;
    return true;
}

/** First-use resolution of SAP_LOG_FILE (mirrors SAP_LOG). */
void
maybeInitLogFileFromEnv()
{
    if (g_log_file_env_checked.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(g_log_file_mutex);
    if (g_log_file_env_checked.load(std::memory_order_relaxed))
        return;
    if (const char *env = std::getenv("SAP_LOG_FILE"))
        openLogFileLocked(env);
    g_log_file_env_checked.store(true, std::memory_order_release);
}

using SteadyClock = std::chrono::steady_clock;

/** Process start in the monotonic timebase (first-use anchored). */
SteadyClock::time_point
processStart()
{
    static const SteadyClock::time_point start = SteadyClock::now();
    return start;
}

std::atomic<int> g_log_level{-1}; // -1 = not yet initialized

LogLevel
initLogLevelFromEnv()
{
    LogLevel level = LogLevel::Info;
    if (const char *env = std::getenv("SAP_LOG")) {
        if (!parseLogLevel(env, &level)) {
            std::fprintf(stderr,
                         "warn: SAP_LOG=\"%s\" is not a log level "
                         "(error/warn/info/debug); using \"info\"\n",
                         env);
            level = LogLevel::Info;
        }
    }
    return level;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error:
        return "error";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

bool
parseLogLevel(const std::string &name, LogLevel *out)
{
    if (name == "error") {
        *out = LogLevel::Error;
    } else if (name == "warn" || name == "warning") {
        *out = LogLevel::Warn;
    } else if (name == "info") {
        *out = LogLevel::Info;
    } else if (name == "debug") {
        *out = LogLevel::Debug;
    } else {
        return false;
    }
    return true;
}

LogLevel
logLevel()
{
    int raw = g_log_level.load(std::memory_order_relaxed);
    if (raw < 0) {
        // First use: resolve SAP_LOG once. A racing first use computes
        // the same value, so the redundant store is harmless.
        LogLevel level = initLogLevelFromEnv();
        g_log_level.store(static_cast<int>(level),
                          std::memory_order_relaxed);
        return level;
    }
    return static_cast<LogLevel>(raw);
}

void
setLogLevel(LogLevel level)
{
    g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
setLogFile(const std::string &path)
{
    std::lock_guard<std::mutex> lock(g_log_file_mutex);
    // A programmatic choice wins over (and suppresses) the env var.
    g_log_file_env_checked.store(true, std::memory_order_release);
    return openLogFileLocked(path);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

std::uint32_t
currentThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

double
monotonicSeconds()
{
    return std::chrono::duration<double>(SteadyClock::now() -
                                         processStart())
        .count();
}

namespace logging_detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logEnabled(LogLevel::Warn))
        logImpl(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
logImpl(LogLevel level, const std::string &msg)
{
    // Wall clock for "when did this happen", monotonic seconds for
    // lining up with trace/metric timestamps, thread id for sorting
    // out the IO/writer/worker interleaving.
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now.time_since_epoch())
            .count() %
        1000000;
    std::tm tm{};
#if defined(_WIN32)
    gmtime_s(&tm, &secs);
#else
    gmtime_r(&secs, &tm);
#endif
    // Sized for the worst case snprintf can derive from the int
    // field widths, not the 20 bytes a sane date needs — gcc's
    // -Wformat-truncation counts the former.
    char when[80];
    std::snprintf(when, sizeof(when), "%04d-%02d-%02dT%02d:%02d:%02d",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday,
                  tm.tm_hour, tm.tm_min, tm.tm_sec);
    // One fprintf call so concurrent threads never interleave within
    // a line (stderr is unbuffered but fprintf is atomic per call
    // under POSIX).
    std::fprintf(stderr, "%s.%06lldZ %12.6f t%02u %-5s %s\n", when,
                 static_cast<long long>(micros), monotonicSeconds(),
                 currentThreadId(), logLevelName(level), msg.c_str());
    // Tee to the SAP_LOG_FILE sink when configured — again one
    // stdio call per line, under the sink lock, then flushed so a
    // crash loses at most the line being written.
    maybeInitLogFileFromEnv();
    std::lock_guard<std::mutex> lock(g_log_file_mutex);
    if (g_log_file) {
        std::fprintf(g_log_file, "%s.%06lldZ %12.6f t%02u %-5s %s\n",
                     when, static_cast<long long>(micros),
                     monotonicSeconds(), currentThreadId(),
                     logLevelName(level), msg.c_str());
        std::fflush(g_log_file);
    }
}

} // namespace logging_detail
} // namespace sap
