/**
 * @file
 * Small integer math helpers used throughout the transformation and
 * scheduling code.
 */

#ifndef SAP_BASE_MATH_UTIL_HH
#define SAP_BASE_MATH_UTIL_HH

#include "base/logging.hh"
#include "base/types.hh"

namespace sap {

/** @return ceil(a / b) for positive b. */
constexpr Index
ceilDiv(Index a, Index b)
{
    return (a + b - 1) / b;
}

/** @return a rounded up to the next multiple of b (b > 0). */
constexpr Index
roundUp(Index a, Index b)
{
    return ceilDiv(a, b) * b;
}

/**
 * Mathematical modulus with non-negative result.
 *
 * C++ `%` is implementation-friendly but returns negative values for
 * negative operands; index arithmetic in the DBT rules needs the
 * wrap-around (cyclic successor) semantics.
 */
constexpr Index
posMod(Index a, Index b)
{
    Index r = a % b;
    return r < 0 ? r + b : r;
}

/** @return x*x. */
constexpr Index
square(Index x)
{
    return x * x;
}

/**
 * Number of elements in a strict triangle of a w-by-w block,
 * i.e. w*(w-1)/2.
 */
constexpr Index
strictTriangleCount(Index w)
{
    return w * (w - 1) / 2;
}

} // namespace sap

#endif // SAP_BASE_MATH_UTIL_HH
