/**
 * @file
 * Deterministic random number generation for reproducible workloads.
 *
 * Every generator in the repository takes an explicit seed so that
 * tests and benchmarks are bit-reproducible across runs and machines.
 */

#ifndef SAP_BASE_RANDOM_HH
#define SAP_BASE_RANDOM_HH

#include <cstdint>
#include <random>

#include "base/types.hh"

namespace sap {

/**
 * Thin wrapper over std::mt19937_64 with convenience draws.
 *
 * Kept deliberately small: the library needs uniform ints (for
 * exact integer tests), uniform reals, and Bernoulli draws (for
 * block-sparsity patterns).
 */
class Rng
{
  public:
    /** @param seed Seed for the underlying engine. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. */
    Index
    uniformInt(Index lo, Index hi)
    {
        std::uniform_int_distribution<Index> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    /** Access the raw engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace sap

#endif // SAP_BASE_RANDOM_HH
