#include "base/table.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/string_util.hh"

namespace sap {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SAP_ASSERT(!headers_.empty(), "a table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SAP_ASSERT(cells.size() == headers_.size(),
               "row has ", cells.size(), " cells, table has ",
               headers_.size(), " columns");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += padLeft(row[c], widths[c]);
            out += (c + 1 < row.size()) ? "  " : "";
        }
        out += '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out;
}

} // namespace sap
