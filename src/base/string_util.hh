/**
 * @file
 * String formatting helpers for human-readable reports.
 */

#ifndef SAP_BASE_STRING_UTIL_HH
#define SAP_BASE_STRING_UTIL_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace sap {

/** Format a double with the given number of significant decimals. */
std::string formatReal(double v, int decimals = 4);

/** Left-pad @p s with spaces to width @p width. */
std::string padLeft(const std::string &s, std::size_t width);

/** Right-pad @p s with spaces to width @p width. */
std::string padRight(const std::string &s, std::size_t width);

/** Join the strings in @p parts with @p sep between elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Escape @p s for use inside a JSON string literal (RFC 8259:
 *  quotes, backslashes, and control characters). */
std::string jsonEscape(const std::string &s);

} // namespace sap

#endif // SAP_BASE_STRING_UTIL_HH
