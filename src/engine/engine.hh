/**
 * @file
 * The unified engine layer: one `run(plan) -> EngineRunResult` API
 * that drives every systolic topology in the repository.
 *
 * Motivation: tests, benchmarks, and examples used to hand-roll a
 * driver loop per topology (build a MatVecPlan here, a MatMulPlan
 * there, wire the grouped harness somewhere else). The engine hides
 * that behind a single interface so that cross-topology comparisons
 * run every array under identical golden-model checks, and so new
 * topologies plug in by registering a factory (see registry.hh).
 *
 * An EnginePlan carries a *problem* (y = A·x + b, C = A·B + E, or
 * the §4 triangular system L·y = b) plus array options; an engine
 * consumes plans whose kind it supports and returns results,
 * measured statistics, the port-level Trace, and topology-specific
 * audit data (feedback delays, PE grouping realizability, spiral
 * topology compliance).
 */

#ifndef SAP_ENGINE_ENGINE_HH
#define SAP_ENGINE_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/metrics.hh"
#include "base/types.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"
#include "sim/spiral_feedback.hh"
#include "sim/trace.hh"

namespace sap {

/** Which algebraic problem a plan describes. */
enum class ProblemKind
{
    MatVec,   ///< y = A·x + b on a linear-array family engine
    MatMul,   ///< C = A·B + E on a hexagonal/mesh family engine
    TriSolve, ///< L·y = b on the back-substitution array pair (§4)
};

/** Printable kind name ("matvec" / "matmul" / "trisolve"). */
std::string problemKindName(ProblemKind k);

/**
 * How an engine executes a plan.
 *
 * The cycle simulators *measure* the paper's claims; the semantics
 * path (src/semantics/) *replays* each engine's DBT operation order
 * as blocked host arithmetic, bit-identical to the array, with the
 * cycle statistics supplied by the closed-form step counts
 * (analysis/formulas.hh) that PR 4 asserted against measurement.
 */
enum class ExecMode : std::uint8_t
{
    Simulate = 0, ///< cycle-accurate simulation (the default)
    Fast = 1,     ///< semantics replay + formula-derived stats
    Validate = 2, ///< run both, diff every reported field, return sim
};

/** Printable mode name ("simulate" / "fast" / "validate"). */
std::string execModeName(ExecMode m);

/**
 * Parse a mode name as printed by execModeName().
 * @return true and set @p out on success; false on an unknown name.
 */
bool parseExecMode(const std::string &name, ExecMode *out);

/**
 * A size-independent problem instance plus array options: the single
 * input type of every engine.
 *
 * Exactly one operand set is meaningful, selected by `kind`:
 * (a, x, b) for MatVec, (a, bmat, e) for MatMul, (a, b) for
 * TriSolve (a = the lower-triangular L, b = the right-hand side).
 * Use the named factories; they validate shapes eagerly.
 */
struct EnginePlan
{
    ProblemKind kind = ProblemKind::MatVec;

    Dense<Scalar> a; ///< the matrix A (any shape; DBT reshapes it);
                     ///< for TriSolve, the square lower-triangular L

    // MatVec operands (b doubles as the TriSolve right-hand side).
    Vec<Scalar> x; ///< input vector (length a.cols())
    Vec<Scalar> b; ///< additive vector / trisolve rhs (length a.rows())

    // MatMul operands.
    Dense<Scalar> bmat; ///< matrix B (a.cols() × m)
    Dense<Scalar> e;    ///< additive matrix E (a.rows() × m)

    Index w = 4; ///< fixed systolic array size
    /**
     * Record port-level events into EngineRunResult::trace.
     * Supported by the "linear", "tri", and "mesh" engines; the
     * other topologies return an empty trace regardless. Tracing
     * requires cycle-level execution: combining recordTrace with
     * ExecMode::Fast is rejected (EngineError) instead of silently
     * returning an empty trace.
     */
    bool recordTrace = false;
    /** Execution mode (see ExecMode). */
    ExecMode mode = ExecMode::Simulate;

    /** Plan for y = A·x + b. */
    static EnginePlan matVec(Dense<Scalar> a, Vec<Scalar> x,
                             Vec<Scalar> b, Index w);

    /** Plan for C = A·B + E. */
    static EnginePlan matMul(Dense<Scalar> a, Dense<Scalar> bmat,
                             Dense<Scalar> e, Index w);

    /** Plan for C = A·B (E = 0). */
    static EnginePlan matMul(Dense<Scalar> a, Dense<Scalar> bmat,
                             Index w);

    /**
     * Plan for L·y = b with L = @p l lower-triangular (square,
     * nonzero diagonal; elements above the diagonal are ignored).
     */
    static EnginePlan triSolve(Dense<Scalar> l, Vec<Scalar> b,
                               Index w);

    /**
     * Shape consistency checks, reported instead of fatal: returns
     * an empty string when the plan is well-formed, else a
     * human-readable reason. The serve layer reuses this so the
     * library and request validation seams cannot drift.
     */
    std::string check() const;

    /** As check(), but throws EngineError on a malformed plan. */
    void validate() const;
};

/**
 * Everything an engine reports back from one execution.
 *
 * `y` is filled for MatVec plans, `c` for MatMul plans. Audit
 * fields default to their vacuous-pass values so callers can assert
 * them uniformly across topologies.
 */
struct EngineRunResult
{
    Vec<Scalar> y;    ///< MatVec/TriSolve result (length a.rows())
    Dense<Scalar> c;  ///< MatMul result (a.rows() × bmat.cols())

    RunStats stats;          ///< measured cycles/PEs/MACs
    Cycle totalCycles = 0;   ///< raw edge-to-edge cycles (if distinct)
    /** Port events; only populated by engines that support tracing
     *  (see EnginePlan::recordTrace). */
    Trace trace;

    /** Observed feedback delay in cycles (linear family; paper: w). */
    Cycle feedbackDelay = -1;
    /** Registers in the feedback chain (linear family; paper: w). */
    Index feedbackRegisters = 0;

    /** Grouped engine: no cycle had both cells of a group busy. */
    bool conflictFree = true;
    /** Spiral engine: every transfer stayed inside its loop. */
    bool topologyRespected = true;
    /** Hex/spiral feedback measurements (null for linear family). */
    std::shared_ptr<SpiralFeedback> feedback;
};

/**
 * The per-request operands streamed through a prepared plan: the
 * data that varies between requests against the same matrix.
 *
 * Exactly one operand set is meaningful, selected by the kind of the
 * prepared plan the inputs are run against: (x, b) for MatVec, e for
 * MatMul (the matmul plan binds both A and B; the additive E is the
 * streamable operand), b for TriSolve (the plan binds L; the
 * right-hand side streams).
 */
struct EngineInputs
{
    Vec<Scalar> x;    ///< MatVec input vector
    Vec<Scalar> b;    ///< MatVec additive vector / TriSolve rhs
    Dense<Scalar> e;  ///< MatMul additive matrix
    /** Record port events (engines that support tracing only). */
    bool recordTrace = false;
    /** Execution mode for this request (see ExecMode). */
    ExecMode mode = ExecMode::Simulate;

    /** Inputs for one y = A·x + b request. */
    static EngineInputs matVec(Vec<Scalar> x, Vec<Scalar> b);

    /** Inputs for one C = A·B + E request. */
    static EngineInputs matMul(Dense<Scalar> e);

    /** Inputs for one L·y = b request. */
    static EngineInputs triSolve(Vec<Scalar> b);

    /** The streamable operands of a full plan (copies them out). */
    static EngineInputs of(const EnginePlan &plan);
};

/**
 * An engine's reusable, matrix-bound artifact: the DBT-transformed
 * plan, detached from the per-request operands.
 *
 * Produced by SystolicEngine::prepare() and consumed by
 * runPrepared(); the serving layer caches these by matrix
 * fingerprint (serve/plan_cache.hh) so repeated requests against the
 * same matrix skip the dense→band rebuild entirely.
 *
 * Prepared plans are immutable after construction and safe to share
 * across threads.
 */
class PreparedPlan
{
  public:
    virtual ~PreparedPlan() = default;

    /** Which problem kind the plan was built for. */
    ProblemKind kind() const { return kind_; }
    /** Array size the plan was built for. */
    Index w() const { return w_; }
    /** Rows of the bound matrix A. */
    Index rows() const { return rows_; }
    /** Cols of the bound matrix A. */
    Index cols() const { return cols_; }
    /** MatMul: cols of the bound matrix B (0 for MatVec). */
    Index outCols() const { return out_cols_; }

    /** Shape-check @p in against the bound matrix (asserts). */
    void validateInputs(const EngineInputs &in) const;

  protected:
    /** Capture the shape contract of @p plan. */
    explicit PreparedPlan(const EnginePlan &plan);

  private:
    ProblemKind kind_;
    Index w_;
    Index rows_;
    Index cols_;
    Index out_cols_;
};

/**
 * Interface every topology implements.
 *
 * Engines are stateless: run(), prepare(), and runPrepared() may be
 * called concurrently from multiple threads, each call builds its
 * own simulator.
 */
class SystolicEngine
{
  public:
    virtual ~SystolicEngine() = default;

    /** Registry name ("linear", "grouped", "overlapped",
     *  "no-feedback", "hex", "spiral", "mesh", "tri"). */
    virtual std::string name() const = 0;

    /** Which problem kind this engine consumes. */
    virtual ProblemKind kind() const = 0;

    /** One-line human description for --help style listings. */
    virtual std::string description() const = 0;

    /**
     * Execute @p plan on this topology, honoring plan.mode: Simulate
     * runs the cycle-accurate array, Fast replays the same operation
     * order as blocked host arithmetic (bit-identical results,
     * formula-derived cycle stats, never a trace), Validate runs
     * both and throws EngineError on any reported-field mismatch.
     *
     * @pre plan.kind == kind() (asserted).
     * @throws EngineError for Fast mode combined with recordTrace,
     *         or a Validate-mode diff failure.
     */
    virtual EngineRunResult run(const EnginePlan &plan) const = 0;

    /**
     * Build the reusable matrix-bound artifact for @p plan: the DBT
     * transform plus all routing, without executing anything. The
     * built-in topologies override this to return their transformed
     * plan; the default wraps the EnginePlan itself so that any
     * engine (including externally registered ones that only
     * implement run()) supports the prepared-execution protocol.
     *
     * @pre plan.kind == kind() (asserted).
     */
    virtual std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const;

    /**
     * Execute one request through a previously prepared plan.
     *
     * @pre @p prepared came from this engine's prepare() (or, for
     *      the linear family, any engine sharing its prepared
     *      representation); asserted via a checked downcast.
     * @pre @p in matches the prepared plan's shape contract.
     */
    virtual EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const;

    /**
     * Batched execution: prepare @p plan once and stream every
     * element of @p inputs through it. The plan's own operand
     * fields (x/b/e) are ignored; only its matrix and options bind.
     *
     * This is the amortization primitive the serving layer is built
     * on: for R requests against one matrix it performs one
     * dense→band transform instead of R.
     */
    std::vector<EngineRunResult>
    runMany(const EnginePlan &plan,
            const std::vector<EngineInputs> &inputs) const;

    /**
     * Stream every element of @p inputs through one already-prepared
     * plan, in order: the streaming half of runMany(), for callers
     * that fetched (or cached) the prepared plan themselves — the
     * batched serve/batch.hh runMany() streams its cache-fetched
     * plans through this. The serving shard's batch path streams
     * per-request instead, because it interleaves validation and
     * stats between runs.
     *
     * @pre @p prepared came from this engine's prepare().
     * @pre Every input matches the prepared plan's shape contract.
     */
    std::vector<EngineRunResult>
    runManyPrepared(const PreparedPlan &prepared,
                    const std::vector<EngineInputs> &inputs) const;
};

} // namespace sap

#endif // SAP_ENGINE_ENGINE_HH
