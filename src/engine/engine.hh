/**
 * @file
 * The unified engine layer: one `run(plan) -> EngineRunResult` API
 * that drives every systolic topology in the repository.
 *
 * Motivation: tests, benchmarks, and examples used to hand-roll a
 * driver loop per topology (build a MatVecPlan here, a MatMulPlan
 * there, wire the grouped harness somewhere else). The engine hides
 * that behind a single interface so that cross-topology comparisons
 * run every array under identical golden-model checks, and so new
 * topologies plug in by registering a factory (see registry.hh).
 *
 * An EnginePlan carries a *problem* (y = A·x + b or C = A·B + E)
 * plus array options; an engine consumes plans whose kind it
 * supports and returns results, measured statistics, the port-level
 * Trace, and topology-specific audit data (feedback delays, PE
 * grouping realizability, spiral topology compliance).
 */

#ifndef SAP_ENGINE_ENGINE_HH
#define SAP_ENGINE_ENGINE_HH

#include <memory>
#include <string>

#include "analysis/metrics.hh"
#include "base/types.hh"
#include "mat/dense.hh"
#include "mat/vector.hh"
#include "sim/spiral_feedback.hh"
#include "sim/trace.hh"

namespace sap {

/** Which algebraic problem a plan describes. */
enum class ProblemKind
{
    MatVec, ///< y = A·x + b on a linear-array family engine
    MatMul, ///< C = A·B + E on a hexagonal-array family engine
};

/** Printable kind name ("matvec" / "matmul"). */
std::string problemKindName(ProblemKind k);

/**
 * A size-independent problem instance plus array options: the single
 * input type of every engine.
 *
 * Exactly one operand set is meaningful, selected by `kind`:
 * (a, x, b) for MatVec, (a, bmat, e) for MatMul. Use the named
 * factories; they validate shapes eagerly.
 */
struct EnginePlan
{
    ProblemKind kind = ProblemKind::MatVec;

    Dense<Scalar> a; ///< the matrix A (any shape; DBT reshapes it)

    // MatVec operands.
    Vec<Scalar> x; ///< input vector (length a.cols())
    Vec<Scalar> b; ///< additive vector (length a.rows())

    // MatMul operands.
    Dense<Scalar> bmat; ///< matrix B (a.cols() × m)
    Dense<Scalar> e;    ///< additive matrix E (a.rows() × m)

    Index w = 4; ///< fixed systolic array size
    /**
     * Record port-level events into EngineRunResult::trace.
     * Currently only the "linear" engine supports tracing; the
     * other topologies return an empty trace regardless.
     */
    bool recordTrace = false;

    /** Plan for y = A·x + b. */
    static EnginePlan matVec(Dense<Scalar> a, Vec<Scalar> x,
                             Vec<Scalar> b, Index w);

    /** Plan for C = A·B + E. */
    static EnginePlan matMul(Dense<Scalar> a, Dense<Scalar> bmat,
                             Dense<Scalar> e, Index w);

    /** Plan for C = A·B (E = 0). */
    static EnginePlan matMul(Dense<Scalar> a, Dense<Scalar> bmat,
                             Index w);

    /** Shape consistency checks (asserts on failure). */
    void validate() const;
};

/**
 * Everything an engine reports back from one execution.
 *
 * `y` is filled for MatVec plans, `c` for MatMul plans. Audit
 * fields default to their vacuous-pass values so callers can assert
 * them uniformly across topologies.
 */
struct EngineRunResult
{
    Vec<Scalar> y;    ///< MatVec result (length a.rows())
    Dense<Scalar> c;  ///< MatMul result (a.rows() × bmat.cols())

    RunStats stats;          ///< measured cycles/PEs/MACs
    Cycle totalCycles = 0;   ///< raw edge-to-edge cycles (if distinct)
    /** Port events; only populated by engines that support tracing
     *  (see EnginePlan::recordTrace). */
    Trace trace;

    /** Observed feedback delay in cycles (linear family; paper: w). */
    Cycle feedbackDelay = -1;
    /** Registers in the feedback chain (linear family; paper: w). */
    Index feedbackRegisters = 0;

    /** Grouped engine: no cycle had both cells of a group busy. */
    bool conflictFree = true;
    /** Spiral engine: every transfer stayed inside its loop. */
    bool topologyRespected = true;
    /** Hex/spiral feedback measurements (null for linear family). */
    std::shared_ptr<SpiralFeedback> feedback;
};

/**
 * Interface every topology implements.
 *
 * Engines are stateless: run() may be called concurrently from
 * multiple threads, each call builds its own simulator.
 */
class SystolicEngine
{
  public:
    virtual ~SystolicEngine() = default;

    /** Registry name ("linear", "grouped", "overlapped", "hex",
     *  "spiral"). */
    virtual std::string name() const = 0;

    /** Which problem kind this engine consumes. */
    virtual ProblemKind kind() const = 0;

    /** One-line human description for --help style listings. */
    virtual std::string description() const = 0;

    /**
     * Execute @p plan on this topology.
     *
     * @pre plan.kind == kind() (asserted).
     */
    virtual EngineRunResult run(const EnginePlan &plan) const = 0;
};

} // namespace sap

#endif // SAP_ENGINE_ENGINE_HH
