#include "engine/registry.hh"

#include <map>
#include <mutex>

namespace sap {

// Defined in engine.cc; installs the built-in topologies.
void registerBuiltinEngines();

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, EngineFactory> factories;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

// The built-ins live in another translation unit of a static
// library, so self-registering global objects would be dropped by
// the linker; install them explicitly before any lookup. Plain
// registerEngine() must NOT call this (registerBuiltinEngines()
// itself registers through it).
void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] { registerBuiltinEngines(); });
}

} // namespace

void
registerEngine(const std::string &name, EngineFactory factory)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.factories[name] = std::move(factory);
}

std::unique_ptr<SystolicEngine>
makeEngine(const std::string &name)
{
    ensureBuiltins();
    EngineFactory factory;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        auto it = r.factories.find(name);
        if (it == r.factories.end())
            return nullptr;
        factory = it->second;
    }
    // Invoke outside the lock: a factory may itself look up or
    // register engines (e.g. a decorator wrapping another engine).
    return factory();
}

std::vector<std::string>
engineNames()
{
    ensureBuiltins();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.factories.size());
    for (const auto &entry : r.factories)
        names.push_back(entry.first);
    return names;
}

std::vector<std::string>
engineNames(ProblemKind kind)
{
    std::vector<std::string> out;
    for (const std::string &name : engineNames()) {
        auto engine = makeEngine(name);
        if (engine && engine->kind() == kind)
            out.push_back(name);
    }
    return out;
}

} // namespace sap
