#include "engine/engine.hh"

#include "analysis/formulas.hh"
#include "base/error.hh"
#include "base/logging.hh"
#include "base/math_util.hh"
#include "baseline/block_no_feedback.hh"
#include "dbt/matmul_plan.hh"
#include "dbt/matvec_plan.hh"
#include "engine/registry.hh"
#include "sim/mesh_array.hh"
#include "solve/trisolve_plan.hh"

namespace sap {

std::string
problemKindName(ProblemKind k)
{
    switch (k) {
      case ProblemKind::MatVec:
        return "matvec";
      case ProblemKind::MatMul:
        return "matmul";
      case ProblemKind::TriSolve:
        return "trisolve";
    }
    SAP_PANIC("unknown ProblemKind ", static_cast<int>(k));
}

std::string
execModeName(ExecMode m)
{
    switch (m) {
      case ExecMode::Simulate:
        return "simulate";
      case ExecMode::Fast:
        return "fast";
      case ExecMode::Validate:
        return "validate";
    }
    SAP_PANIC("unknown ExecMode ", static_cast<int>(m));
}

bool
parseExecMode(const std::string &name, ExecMode *out)
{
    if (name == "simulate")
        *out = ExecMode::Simulate;
    else if (name == "fast")
        *out = ExecMode::Fast;
    else if (name == "validate")
        *out = ExecMode::Validate;
    else
        return false;
    return true;
}

EnginePlan
EnginePlan::matVec(Dense<Scalar> a, Vec<Scalar> x, Vec<Scalar> b,
                   Index w)
{
    EnginePlan p;
    p.kind = ProblemKind::MatVec;
    p.a = std::move(a);
    p.x = std::move(x);
    p.b = std::move(b);
    p.w = w;
    p.validate();
    return p;
}

EnginePlan
EnginePlan::matMul(Dense<Scalar> a, Dense<Scalar> bmat, Dense<Scalar> e,
                   Index w)
{
    EnginePlan p;
    p.kind = ProblemKind::MatMul;
    p.a = std::move(a);
    p.bmat = std::move(bmat);
    p.e = std::move(e);
    p.w = w;
    p.validate();
    return p;
}

EnginePlan
EnginePlan::matMul(Dense<Scalar> a, Dense<Scalar> bmat, Index w)
{
    Dense<Scalar> zero(a.rows(), bmat.cols());
    return matMul(std::move(a), std::move(bmat), std::move(zero), w);
}

EnginePlan
EnginePlan::triSolve(Dense<Scalar> l, Vec<Scalar> b, Index w)
{
    EnginePlan p;
    p.kind = ProblemKind::TriSolve;
    p.a = std::move(l);
    p.b = std::move(b);
    p.w = w;
    p.validate();
    return p;
}

std::string
EnginePlan::check() const
{
    if (w < 1)
        return "array size w must be >= 1";
    if (a.rows() <= 0 || a.cols() <= 0)
        return "empty matrix A";
    if (kind == ProblemKind::MatVec) {
        if (x.size() != a.cols())
            return "x length " + std::to_string(x.size()) +
                   " != A cols " + std::to_string(a.cols());
        if (b.size() != a.rows())
            return "b length " + std::to_string(b.size()) +
                   " != A rows " + std::to_string(a.rows());
    } else if (kind == ProblemKind::MatMul) {
        if (bmat.rows() != a.cols())
            return "B rows " + std::to_string(bmat.rows()) +
                   " != A cols " + std::to_string(a.cols());
        if (e.rows() != a.rows() || e.cols() != bmat.cols())
            return "E shape " + std::to_string(e.rows()) + "x" +
                   std::to_string(e.cols()) + " != " +
                   std::to_string(a.rows()) + "x" +
                   std::to_string(bmat.cols());
    } else {
        if (a.rows() != a.cols())
            return "L must be square, got " +
                   std::to_string(a.rows()) + "x" +
                   std::to_string(a.cols());
        if (b.size() != a.rows())
            return "b length " + std::to_string(b.size()) +
                   " != order " + std::to_string(a.rows());
        for (Index i = 0; i < a.rows(); ++i)
            if (a(i, i) == 0)
                return "zero diagonal at " + std::to_string(i);
    }
    if (mode == ExecMode::Fast && recordTrace)
        return "recordTrace requires simulate or validate mode";
    return {};
}

void
EnginePlan::validate() const
{
    std::string error = check();
    if (!error.empty())
        throw EngineError(error);
}

EngineInputs
EngineInputs::matVec(Vec<Scalar> x, Vec<Scalar> b)
{
    EngineInputs in;
    in.x = std::move(x);
    in.b = std::move(b);
    return in;
}

EngineInputs
EngineInputs::matMul(Dense<Scalar> e)
{
    EngineInputs in;
    in.e = std::move(e);
    return in;
}

EngineInputs
EngineInputs::triSolve(Vec<Scalar> b)
{
    EngineInputs in;
    in.b = std::move(b);
    return in;
}

EngineInputs
EngineInputs::of(const EnginePlan &plan)
{
    EngineInputs in;
    if (plan.kind == ProblemKind::MatVec) {
        in.x = plan.x;
        in.b = plan.b;
    } else if (plan.kind == ProblemKind::MatMul) {
        in.e = plan.e;
    } else {
        in.b = plan.b;
    }
    in.recordTrace = plan.recordTrace;
    in.mode = plan.mode;
    return in;
}

PreparedPlan::PreparedPlan(const EnginePlan &plan)
    : kind_(plan.kind), w_(plan.w), rows_(plan.a.rows()),
      cols_(plan.a.cols()),
      out_cols_(plan.kind == ProblemKind::MatMul ? plan.bmat.cols() : 0)
{
}

void
PreparedPlan::validateInputs(const EngineInputs &in) const
{
    if (kind_ == ProblemKind::MatVec) {
        SAP_ASSERT(in.x.size() == cols_, "x length ", in.x.size(),
                   " != bound A cols ", cols_);
        SAP_ASSERT(in.b.size() == rows_, "b length ", in.b.size(),
                   " != bound A rows ", rows_);
    } else if (kind_ == ProblemKind::MatMul) {
        SAP_ASSERT(in.e.rows() == rows_ && in.e.cols() == out_cols_,
                   "E shape ", in.e.rows(), "x", in.e.cols(),
                   " != bound C shape ", rows_, "x", out_cols_);
    } else {
        SAP_ASSERT(in.b.size() == rows_, "b length ", in.b.size(),
                   " != bound order ", rows_);
    }
}

namespace {

/**
 * Fallback prepared representation: the whole EnginePlan, so that
 * engines which only implement run() still speak the prepared
 * protocol (they re-transform per request, but behave identically).
 */
class GenericPrepared : public PreparedPlan
{
  public:
    explicit GenericPrepared(const EnginePlan &p)
        : PreparedPlan(p), plan(p)
    {
    }

    EnginePlan plan;
};

/** The linear family's prepared artifact: the DBT mat-vec plan. */
class MatVecPrepared : public PreparedPlan
{
  public:
    explicit MatVecPrepared(const EnginePlan &p)
        : PreparedPlan(p), plan(p.a, p.w)
    {
    }

    MatVecPlan plan;
};

/** The hex family's prepared artifact: the DBT mat-mul plan. */
class MatMulPrepared : public PreparedPlan
{
  public:
    explicit MatMulPrepared(const EnginePlan &p)
        : PreparedPlan(p), plan(p.a, p.bmat, p.w)
    {
    }

    MatMulPlan plan;
};

/** The mesh engine's prepared artifact: padded block partitions. */
class MeshPrepared : public PreparedPlan
{
  public:
    explicit MeshPrepared(const EnginePlan &p)
        : PreparedPlan(p), plan(p.a, p.bmat, p.w)
    {
    }

    MeshMatMulPlan plan;
};

/** The tri engine's prepared artifact: panels + diagonal blocks. */
class TriSolvePrepared : public PreparedPlan
{
  public:
    explicit TriSolvePrepared(const EnginePlan &p)
        : PreparedPlan(p), plan(p.a, p.w)
    {
    }

    TriSolvePlan plan;
};

/** The no-feedback baseline's prepared artifact: per-block plans. */
class NoFeedbackPrepared : public PreparedPlan
{
  public:
    explicit NoFeedbackPrepared(const EnginePlan &p)
        : PreparedPlan(p), plan(p.a, p.w)
    {
    }

    BlockNoFeedbackPlan plan;
};

/** Checked downcast of a prepared plan to an engine's own type. */
template <typename T>
const T &
preparedAs(const PreparedPlan &prepared, const char *engine)
{
    const T *p = dynamic_cast<const T *>(&prepared);
    SAP_ASSERT(p != nullptr, engine,
               " engine got a foreign prepared plan");
    return *p;
}

/**
 * Validate-mode diff: every field an engine reports must agree
 * between the simulated and the fast execution — results bit-exactly
 * (the semantics path replays the array's accumulation order, so
 * even floating-point workloads must match to the last bit), stats
 * because the fast path derives them from the closed-form step
 * counts the sims are asserted against. Traces are exempt (fast mode
 * never produces one) and so is the feedback measurement object.
 */
void
diffOrThrow(const std::string &engine, const EngineRunResult &sim,
            const EngineRunResult &fast)
{
    auto fail = [&](const char *field) {
        throw EngineError("validate mode: " + engine +
                          " fast path diverged from the simulator in "
                          "field '" + field + "'");
    };
    if (fast.y.size() != sim.y.size() || !(fast.y == sim.y))
        fail("y");
    if (fast.c.rows() != sim.c.rows() ||
        fast.c.cols() != sim.c.cols() || !(fast.c == sim.c))
        fail("c");
    if (fast.stats.cycles != sim.stats.cycles)
        fail("stats.cycles");
    if (fast.stats.peCount != sim.stats.peCount)
        fail("stats.peCount");
    if (fast.stats.usefulMacs != sim.stats.usefulMacs)
        fail("stats.usefulMacs");
    if (fast.totalCycles != sim.totalCycles)
        fail("totalCycles");
    if (fast.feedbackDelay != sim.feedbackDelay)
        fail("feedbackDelay");
    if (fast.feedbackRegisters != sim.feedbackRegisters)
        fail("feedbackRegisters");
    if (fast.conflictFree != sim.conflictFree)
        fail("conflictFree");
    if (fast.topologyRespected != sim.topologyRespected)
        fail("topologyRespected");
}

/**
 * The per-engine mode switch: every engine's runPrepared() body is a
 * (sim, fast) lambda pair behind this dispatcher. Fast mode cannot
 * trace — the semantics path has no cycle timeline — so the
 * combination is rejected rather than silently dropping events.
 */
template <typename SimFn, typename FastFn>
EngineRunResult
dispatchMode(ExecMode mode, const std::string &engine,
             bool record_trace, const SimFn &sim, const FastFn &fast)
{
    switch (mode) {
      case ExecMode::Simulate:
        return sim();
      case ExecMode::Fast:
        if (record_trace)
            throw EngineError(
                engine +
                ": recordTrace requires simulate or validate mode");
        return fast();
      case ExecMode::Validate: {
        EngineRunResult s = sim();
        EngineRunResult f = fast();
        diffOrThrow(engine, s, f);
        return s;
      }
    }
    SAP_PANIC("unknown ExecMode ", static_cast<int>(mode));
}

} // namespace

std::shared_ptr<const PreparedPlan>
SystolicEngine::prepare(const EnginePlan &plan) const
{
    SAP_ASSERT(plan.kind == kind(), name(), " engine needs a ",
               problemKindName(kind()), " plan");
    return std::make_shared<GenericPrepared>(plan);
}

EngineRunResult
SystolicEngine::runPrepared(const PreparedPlan &prepared,
                            const EngineInputs &in) const
{
    const GenericPrepared &g =
        preparedAs<GenericPrepared>(prepared, name().c_str());
    prepared.validateInputs(in);
    EnginePlan request = g.plan;
    if (request.kind == ProblemKind::MatVec) {
        request.x = in.x;
        request.b = in.b;
    } else if (request.kind == ProblemKind::MatMul) {
        request.e = in.e;
    } else {
        request.b = in.b;
    }
    request.recordTrace = in.recordTrace;
    request.mode = in.mode;
    return run(request);
}

std::vector<EngineRunResult>
SystolicEngine::runMany(const EnginePlan &plan,
                        const std::vector<EngineInputs> &inputs) const
{
    std::shared_ptr<const PreparedPlan> prepared = prepare(plan);
    return runManyPrepared(*prepared, inputs);
}

std::vector<EngineRunResult>
SystolicEngine::runManyPrepared(
    const PreparedPlan &prepared,
    const std::vector<EngineInputs> &inputs) const
{
    std::vector<EngineRunResult> out;
    out.reserve(inputs.size());
    for (const EngineInputs &in : inputs)
        out.push_back(runPrepared(prepared, in));
    return out;
}

namespace {

/** y = A·x + b on the plain contraflow array. */
class LinearEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "linear"; }
    ProblemKind kind() const override { return ProblemKind::MatVec; }
    std::string
    description() const override
    {
        return "contraflow linear array with w-register feedback";
    }

    std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "linear engine needs a "
                   "matvec plan");
        return std::make_shared<MatVecPrepared>(plan);
    }

    EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const override
    {
        const MatVecPrepared &p =
            preparedAs<MatVecPrepared>(prepared, "linear");
        prepared.validateInputs(in);
        auto fill = [](MatVecPlanResult r) {
            EngineRunResult out;
            out.y = std::move(r.y);
            out.stats = r.stats;
            out.totalCycles = r.stats.cycles;
            out.trace = std::move(r.trace);
            out.feedbackDelay = r.observedFeedbackDelay;
            out.feedbackRegisters = r.feedbackRegisters;
            return out;
        };
        return dispatchMode(
            in.mode, "linear", in.recordTrace,
            [&] { return fill(p.plan.run(in.x, in.b, in.recordTrace)); },
            [&] { return fill(p.plan.runSemantics(in.x, in.b)); });
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        return runPrepared(*prepare(plan), EngineInputs::of(plan));
    }
};

/** Linear engine with 2:1 PE grouping (A = ⌈w/2⌉ physical PEs). */
class GroupedEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "grouped"; }
    ProblemKind kind() const override { return ProblemKind::MatVec; }
    std::string
    description() const override
    {
        return "linear array with 2:1 PE grouping";
    }

    std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "grouped engine needs a "
                   "matvec plan");
        return std::make_shared<MatVecPrepared>(plan);
    }

    EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const override
    {
        const MatVecPrepared &p =
            preparedAs<MatVecPrepared>(prepared, "grouped");
        prepared.validateInputs(in);
        auto fill = [&p](GroupedRunResult r) {
            EngineRunResult out;
            out.y = p.plan.transform().extractY(r.logical.ybar);
            out.stats = r.grouped;
            out.totalCycles = r.grouped.cycles;
            out.trace = std::move(r.logical.trace);
            out.feedbackDelay = r.logical.observedFeedbackDelay;
            out.feedbackRegisters = r.logical.feedbackRegisters;
            out.conflictFree = r.conflictFree;
            return out;
        };
        return dispatchMode(
            in.mode, "grouped", in.recordTrace,
            [&] { return fill(p.plan.runGroupedPlan(in.x, in.b)); },
            [&] { return fill(p.plan.runGroupedSemantics(in.x, in.b)); });
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        return runPrepared(*prepare(plan), EngineInputs::of(plan));
    }
};

/** Linear engine with the split-problem interleaving booster. */
class OverlappedEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "overlapped"; }
    ProblemKind kind() const override { return ProblemKind::MatVec; }
    std::string
    description() const override
    {
        return "linear array, split problem interleaved on "
               "alternate cycles";
    }

    std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "overlapped engine needs a "
                   "matvec plan");
        return std::make_shared<MatVecPrepared>(plan);
    }

    EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const override
    {
        const MatVecPrepared &p =
            preparedAs<MatVecPrepared>(prepared, "overlapped");
        prepared.validateInputs(in);
        auto fill = [](MatVecPlanResult r) {
            EngineRunResult out;
            out.y = std::move(r.y);
            out.stats = r.stats;
            out.totalCycles = r.stats.cycles;
            out.feedbackDelay = r.observedFeedbackDelay;
            out.feedbackRegisters = r.feedbackRegisters;
            return out;
        };
        return dispatchMode(
            in.mode, "overlapped", in.recordTrace,
            [&] { return fill(p.plan.runOverlapped(in.x, in.b)); },
            [&] {
                return fill(p.plan.runOverlappedSemantics(in.x, in.b));
            });
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        return runPrepared(*prepare(plan), EngineInputs::of(plan));
    }
};

/**
 * C = A·B + E on the hexagonal array with spiral feedback. The
 * "spiral" variant additionally treats a topology violation as a
 * hard failure instead of a reported flag.
 */
class HexEngine : public SystolicEngine
{
  public:
    explicit HexEngine(bool strict) : strict_(strict) {}

    std::string name() const override { return strict_ ? "spiral" : "hex"; }
    ProblemKind kind() const override { return ProblemKind::MatMul; }
    std::string
    description() const override
    {
        return strict_
            ? "hexagonal array, spiral feedback topology audited"
            : "hexagonal array with spiral feedback";
    }

    std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), name(), " engine needs a "
                   "matmul plan");
        return std::make_shared<MatMulPrepared>(plan);
    }

    EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const override
    {
        const MatMulPrepared &p =
            preparedAs<MatMulPrepared>(prepared, name().c_str());
        prepared.validateInputs(in);
        auto fill = [this](MatMulPlanResult r) {
            EngineRunResult out;
            out.c = std::move(r.c);
            out.stats = r.stats;
            out.totalCycles = r.totalCycles;
            out.feedback = r.feedback;
            out.topologyRespected =
                !r.feedback || r.feedback->topologyRespected();
            if (strict_)
                SAP_ASSERT(out.topologyRespected,
                           "spiral feedback topology violated");
            return out;
        };
        return dispatchMode(
            in.mode, name(), in.recordTrace,
            [&] { return fill(p.plan.run(in.e)); },
            [&] { return fill(p.plan.runSemantics(in.e)); });
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        return runPrepared(*prepare(plan), EngineInputs::of(plan));
    }

  private:
    bool strict_;
};

/** C = A·B + E on the 2D output-stationary mesh. */
class MeshEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "mesh"; }
    ProblemKind kind() const override { return ProblemKind::MatMul; }
    std::string
    description() const override
    {
        return "output-stationary w×w mesh, C resident in the PEs";
    }

    std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "mesh engine needs a "
                   "matmul plan");
        return std::make_shared<MeshPrepared>(plan);
    }

    EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const override
    {
        const MeshPrepared &p =
            preparedAs<MeshPrepared>(prepared, "mesh");
        prepared.validateInputs(in);
        auto fill = [](MeshRunResult r) {
            EngineRunResult out;
            out.c = std::move(r.c);
            out.stats = r.stats;
            out.totalCycles = r.stats.cycles;
            out.trace = std::move(r.trace);
            return out;
        };
        return dispatchMode(
            in.mode, "mesh", in.recordTrace,
            [&] { return fill(p.plan.run(in.e, in.recordTrace)); },
            [&] { return fill(p.plan.runSemantics(in.e)); });
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        return runPrepared(*prepare(plan), EngineInputs::of(plan));
    }
};

/** L·y = b via blocked forward substitution on the array pair. */
class TriEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "tri"; }
    ProblemKind kind() const override { return ProblemKind::TriSolve; }
    std::string
    description() const override
    {
        return "blocked forward substitution: panels on the linear "
               "array, diagonal blocks on the back-substitution "
               "array";
    }

    std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "tri engine needs a "
                   "trisolve plan");
        return std::make_shared<TriSolvePrepared>(plan);
    }

    EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const override
    {
        const TriSolvePrepared &p =
            preparedAs<TriSolvePrepared>(prepared, "tri");
        prepared.validateInputs(in);
        auto fill = [](TriSolvePlanResult r) {
            EngineRunResult out;
            out.y = std::move(r.y);
            out.stats = r.stats;
            out.totalCycles = r.stats.cycles;
            out.trace = std::move(r.trace);
            return out;
        };
        return dispatchMode(
            in.mode, "tri", in.recordTrace,
            [&] { return fill(p.plan.run(in.b, in.recordTrace)); },
            [&] { return fill(p.plan.runSemantics(in.b)); });
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        return runPrepared(*prepare(plan), EngineInputs::of(plan));
    }
};

/** The paper's straw man: per-block runs, host accumulation. */
class NoFeedbackEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "no-feedback"; }
    ProblemKind kind() const override { return ProblemKind::MatVec; }
    std::string
    description() const override
    {
        return "baseline: isolated per-block array runs, partial "
               "results accumulated on the host (no feedback)";
    }

    std::shared_ptr<const PreparedPlan>
    prepare(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "no-feedback engine needs a "
                   "matvec plan");
        return std::make_shared<NoFeedbackPrepared>(plan);
    }

    EngineRunResult
    runPrepared(const PreparedPlan &prepared,
                const EngineInputs &in) const override
    {
        const NoFeedbackPrepared &p =
            preparedAs<NoFeedbackPrepared>(prepared, "no-feedback");
        prepared.validateInputs(in);
        auto fill = [](BlockNoFeedbackResult r) {
            EngineRunResult out;
            out.y = std::move(r.y);
            out.stats = r.stats;
            out.totalCycles = r.stats.cycles;
            // No feedback loop exists; the defaults (delay −1, zero
            // registers) are the honest report.
            return out;
        };
        return dispatchMode(
            in.mode, "no-feedback", in.recordTrace,
            [&] { return fill(p.plan.run(in.x, in.b)); },
            [&] { return fill(p.plan.runSemantics(in.x, in.b)); });
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        return runPrepared(*prepare(plan), EngineInputs::of(plan));
    }
};

} // namespace

void
registerBuiltinEngines()
{
    registerEngine("linear", [] {
        return std::make_unique<LinearEngine>();
    });
    registerEngine("grouped", [] {
        return std::make_unique<GroupedEngine>();
    });
    registerEngine("overlapped", [] {
        return std::make_unique<OverlappedEngine>();
    });
    registerEngine("no-feedback", [] {
        return std::make_unique<NoFeedbackEngine>();
    });
    registerEngine("hex", [] {
        return std::make_unique<HexEngine>(/*strict=*/false);
    });
    registerEngine("spiral", [] {
        return std::make_unique<HexEngine>(/*strict=*/true);
    });
    registerEngine("mesh", [] {
        return std::make_unique<MeshEngine>();
    });
    registerEngine("tri", [] {
        return std::make_unique<TriEngine>();
    });
}

} // namespace sap
