#include "engine/engine.hh"

#include "base/logging.hh"
#include "dbt/matmul_plan.hh"
#include "dbt/matvec_plan.hh"
#include "engine/registry.hh"

namespace sap {

std::string
problemKindName(ProblemKind k)
{
    switch (k) {
      case ProblemKind::MatVec:
        return "matvec";
      case ProblemKind::MatMul:
        return "matmul";
    }
    SAP_PANIC("unknown ProblemKind ", static_cast<int>(k));
}

EnginePlan
EnginePlan::matVec(Dense<Scalar> a, Vec<Scalar> x, Vec<Scalar> b,
                   Index w)
{
    EnginePlan p;
    p.kind = ProblemKind::MatVec;
    p.a = std::move(a);
    p.x = std::move(x);
    p.b = std::move(b);
    p.w = w;
    p.validate();
    return p;
}

EnginePlan
EnginePlan::matMul(Dense<Scalar> a, Dense<Scalar> bmat, Dense<Scalar> e,
                   Index w)
{
    EnginePlan p;
    p.kind = ProblemKind::MatMul;
    p.a = std::move(a);
    p.bmat = std::move(bmat);
    p.e = std::move(e);
    p.w = w;
    p.validate();
    return p;
}

EnginePlan
EnginePlan::matMul(Dense<Scalar> a, Dense<Scalar> bmat, Index w)
{
    Dense<Scalar> zero(a.rows(), bmat.cols());
    return matMul(std::move(a), std::move(bmat), std::move(zero), w);
}

void
EnginePlan::validate() const
{
    SAP_ASSERT(w >= 1, "array size w = ", w, " must be at least 1");
    SAP_ASSERT(a.rows() > 0 && a.cols() > 0, "empty matrix A");
    if (kind == ProblemKind::MatVec) {
        SAP_ASSERT(x.size() == a.cols(), "x length ", x.size(),
                   " != A cols ", a.cols());
        SAP_ASSERT(b.size() == a.rows(), "b length ", b.size(),
                   " != A rows ", a.rows());
    } else {
        SAP_ASSERT(bmat.rows() == a.cols(), "B rows ", bmat.rows(),
                   " != A cols ", a.cols());
        SAP_ASSERT(e.rows() == a.rows() && e.cols() == bmat.cols(),
                   "E shape ", e.rows(), "x", e.cols(), " != ",
                   a.rows(), "x", bmat.cols());
    }
}

namespace {

/** y = A·x + b on the plain contraflow array. */
class LinearEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "linear"; }
    ProblemKind kind() const override { return ProblemKind::MatVec; }
    std::string
    description() const override
    {
        return "contraflow linear array with w-register feedback";
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "linear engine needs a "
                   "matvec plan");
        MatVecPlan mv(plan.a, plan.w);
        MatVecPlanResult r = mv.run(plan.x, plan.b, plan.recordTrace);

        EngineRunResult out;
        out.y = std::move(r.y);
        out.stats = r.stats;
        out.totalCycles = r.stats.cycles;
        out.trace = std::move(r.trace);
        out.feedbackDelay = r.observedFeedbackDelay;
        out.feedbackRegisters = r.feedbackRegisters;
        return out;
    }
};

/** Linear engine with 2:1 PE grouping (A = ⌈w/2⌉ physical PEs). */
class GroupedEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "grouped"; }
    ProblemKind kind() const override { return ProblemKind::MatVec; }
    std::string
    description() const override
    {
        return "linear array with 2:1 PE grouping";
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "grouped engine needs a "
                   "matvec plan");
        MatVecPlan mv(plan.a, plan.w);
        GroupedRunResult r = mv.runGroupedPlan(plan.x, plan.b);

        EngineRunResult out;
        out.y = mv.transform().extractY(r.logical.ybar);
        out.stats = r.grouped;
        out.totalCycles = r.grouped.cycles;
        out.trace = std::move(r.logical.trace);
        out.feedbackDelay = r.logical.observedFeedbackDelay;
        out.feedbackRegisters = r.logical.feedbackRegisters;
        out.conflictFree = r.conflictFree;
        return out;
    }
};

/** Linear engine with the split-problem interleaving booster. */
class OverlappedEngine : public SystolicEngine
{
  public:
    std::string name() const override { return "overlapped"; }
    ProblemKind kind() const override { return ProblemKind::MatVec; }
    std::string
    description() const override
    {
        return "linear array, split problem interleaved on "
               "alternate cycles";
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), "overlapped engine needs a "
                   "matvec plan");
        MatVecPlan mv(plan.a, plan.w);
        MatVecPlanResult r = mv.runOverlapped(plan.x, plan.b);

        EngineRunResult out;
        out.y = std::move(r.y);
        out.stats = r.stats;
        out.totalCycles = r.stats.cycles;
        out.feedbackDelay = r.observedFeedbackDelay;
        out.feedbackRegisters = r.feedbackRegisters;
        return out;
    }
};

/**
 * C = A·B + E on the hexagonal array with spiral feedback. The
 * "spiral" variant additionally treats a topology violation as a
 * hard failure instead of a reported flag.
 */
class HexEngine : public SystolicEngine
{
  public:
    explicit HexEngine(bool strict) : strict_(strict) {}

    std::string name() const override { return strict_ ? "spiral" : "hex"; }
    ProblemKind kind() const override { return ProblemKind::MatMul; }
    std::string
    description() const override
    {
        return strict_
            ? "hexagonal array, spiral feedback topology audited"
            : "hexagonal array with spiral feedback";
    }

    EngineRunResult
    run(const EnginePlan &plan) const override
    {
        SAP_ASSERT(plan.kind == kind(), name(), " engine needs a "
                   "matmul plan");
        MatMulPlan mm(plan.a, plan.bmat, plan.w);
        MatMulPlanResult r = mm.run(plan.e);

        EngineRunResult out;
        out.c = std::move(r.c);
        out.stats = r.stats;
        out.totalCycles = r.totalCycles;
        out.feedback = r.feedback;
        out.topologyRespected =
            !r.feedback || r.feedback->topologyRespected();
        if (strict_)
            SAP_ASSERT(out.topologyRespected,
                       "spiral feedback topology violated");
        return out;
    }

  private:
    bool strict_;
};

} // namespace

void
registerBuiltinEngines()
{
    registerEngine("linear", [] {
        return std::make_unique<LinearEngine>();
    });
    registerEngine("grouped", [] {
        return std::make_unique<GroupedEngine>();
    });
    registerEngine("overlapped", [] {
        return std::make_unique<OverlappedEngine>();
    });
    registerEngine("hex", [] {
        return std::make_unique<HexEngine>(/*strict=*/false);
    });
    registerEngine("spiral", [] {
        return std::make_unique<HexEngine>(/*strict=*/true);
    });
}

} // namespace sap
