/**
 * @file
 * Name → engine factory registry.
 *
 * The built-in topologies self-register on first use; external code
 * (tests of experimental topologies, future backends) can add more
 * with registerEngine(). Lookup is by the stable string names used
 * throughout tests, benches, and examples:
 *
 *   "linear"      y = A·x + b, contraflow array with w-deep feedback
 *   "grouped"     linear with 2:1 PE grouping (A = ⌈w/2⌉)
 *   "overlapped"  linear with the split-problem interleaving booster
 *   "no-feedback" baseline: per-block runs, host accumulation
 *   "hex"         C = A·B + E, hexagonal array with spiral feedback
 *   "spiral"      hex plus a strict spiral-topology audit
 *   "mesh"        C = A·B + E, output-stationary 2D mesh
 *   "tri"         L·y = b, §4 blocked forward substitution
 */

#ifndef SAP_ENGINE_REGISTRY_HH
#define SAP_ENGINE_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.hh"

namespace sap {

/** Factory producing a fresh engine instance. */
using EngineFactory = std::function<std::unique_ptr<SystolicEngine>()>;

/**
 * Register @p factory under @p name, replacing any previous entry
 * with that name. Safe to call at any time after static init.
 */
void registerEngine(const std::string &name, EngineFactory factory);

/**
 * Instantiate the engine registered as @p name.
 *
 * @return nullptr if the name is unknown.
 */
std::unique_ptr<SystolicEngine> makeEngine(const std::string &name);

/** Sorted names of all registered engines. */
std::vector<std::string> engineNames();

/** Sorted names of engines accepting @p kind. */
std::vector<std::string> engineNames(ProblemKind kind);

} // namespace sap

#endif // SAP_ENGINE_REGISTRY_HH
