#include "cluster/cluster.hh"

#include "base/logging.hh"

namespace sap {

namespace {

Shard::Options
shardOptions(const Cluster::Options &opts)
{
    Shard::Options shard;
    shard.threads = opts.threadsPerShard;
    shard.planCacheCapacity = opts.planCacheCapacityPerShard;
    shard.crossCheckAll = opts.crossCheckAll;
    shard.metrics = opts.metrics;
    return shard;
}

} // namespace

Cluster::Cluster() : Cluster(Options()) {}

Cluster::Cluster(const Options &opts)
    : opts_(opts),
      router_(opts.shards, opts.virtualNodesPerShard)
{
    SAP_ASSERT(opts_.shards >= 1, "cluster needs at least one shard");
    shards_.reserve(opts_.shards);
    for (std::size_t i = 0; i < opts_.shards; ++i)
        shards_.push_back(
            std::make_unique<Shard>(shardOptions(opts_)));
    SAP_LOG_DEBUG("cluster up: ", opts_.shards, " shards x ",
                  opts_.threadsPerShard, " threads, plan cache ",
                  opts_.planCacheCapacityPerShard, "/shard, metrics ",
                  opts_.metrics ? "on" : "off");
}

Digest
Cluster::routingKey(const ServeRequest &req)
{
    return planDigest(req.engine, req.plan);
}

std::size_t
Cluster::shardFor(const ServeRequest &req) const
{
    return router_.shardFor(routingKey(req));
}

std::future<ServeResponse>
Cluster::submit(ServeRequest req)
{
    // The routing key doubles as the shard-side cache digest, so
    // the matrices are hashed once per request.
    Digest key = routingKey(req);
    traceStamp(req.trace, TraceStage::Route);
    Shard &shard = *shards_[router_.shardFor(key)];
    return shard.submit(std::move(req), key);
}

void
Cluster::submitAsync(ServeRequest req, CompletionFn done)
{
    Digest key = routingKey(req);
    traceStamp(req.trace, TraceStage::Route);
    Shard &shard = *shards_[router_.shardFor(key)];
    shard.submitAsync(std::move(req), std::move(done), key);
}

void
Cluster::submitToQueue(ServeRequest req, CompletionQueue *queue,
                       std::uint64_t tag)
{
    Digest key = routingKey(req);
    submitToQueue(std::move(req), queue, tag, key);
}

void
Cluster::submitToQueue(ServeRequest req, CompletionQueue *queue,
                       std::uint64_t tag, Digest digest)
{
    SAP_ASSERT(queue != nullptr, "submitToQueue() needs a queue");
    traceStamp(req.trace, TraceStage::Route);
    Shard &shard = *shards_[router_.shardFor(digest)];
    shard.submitAsync(
        std::move(req),
        [queue, tag](ServeResponse resp) {
            traceStamp(resp.trace, TraceStage::CqPush);
            queue->push({tag, std::move(resp)});
        },
        digest);
}

std::vector<std::future<ServeResponse>>
Cluster::submitBatch(std::vector<ServeRequest> reqs)
{
    // Partition by shard — carrying each request's digest along so
    // neither routing nor batch grouping hashes a matrix twice —
    // then batch-submit each partition and put the futures back in
    // request order.
    std::vector<std::vector<std::pair<ServeRequest, Digest>>>
        partition(shards_.size());
    std::vector<std::pair<std::size_t, std::size_t>> slot(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        Digest key = routingKey(reqs[i]);
        std::size_t s = router_.shardFor(key);
        slot[i] = {s, partition[s].size()};
        partition[s].emplace_back(std::move(reqs[i]), key);
    }

    std::vector<std::vector<std::future<ServeResponse>>> per_shard(
        shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
        if (!partition[s].empty())
            per_shard[s] =
                shards_[s]->submitBatch(std::move(partition[s]));

    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(slot.size());
    for (const auto &[s, j] : slot)
        futures.push_back(std::move(per_shard[s][j]));
    return futures;
}

ClusterStats
Cluster::stats() const
{
    ClusterStats out;
    out.shards.reserve(shards_.size());
    for (const std::unique_ptr<Shard> &shard : shards_) {
        ServerStats s = shard->stats();
        out.requests += s.requests;
        out.failures += s.failures;
        out.crossCheckFailures += s.crossCheckFailures;
        out.planCache.hits += s.planCache.hits;
        out.planCache.misses += s.planCache.misses;
        out.planCache.evictions += s.planCache.evictions;
        out.planCache.collisions += s.planCache.collisions;
        out.shards.push_back(std::move(s));
    }
    return out;
}

MetricsSnapshot
Cluster::metricsSnapshot() const
{
    MetricsSnapshot merged;
    for (const std::unique_ptr<Shard> &shard : shards_)
        merged.merge(shard->metricsSnapshot());
    return merged;
}

double
Cluster::queueDepth() const
{
    double depth = 0;
    for (const std::unique_ptr<Shard> &shard : shards_)
        depth += shard->queueDepth();
    return depth;
}

ServerStats
Cluster::statsSnapshot() const
{
    std::vector<ServerStats> parts;
    parts.reserve(shards_.size());
    for (const std::unique_ptr<Shard> &shard : shards_)
        parts.push_back(shard->stats(/*include_samples=*/true));
    return mergeServerStats(parts);
}

const Shard &
Cluster::shard(std::size_t i) const
{
    SAP_ASSERT(i < shards_.size(), "shard index ", i,
               " out of range (", shards_.size(), " shards)");
    return *shards_[i];
}

} // namespace sap
