#include "cluster/router.hh"

#include <algorithm>
#include <string>

#include "base/logging.hh"

namespace sap {

namespace {

/**
 * splitmix64 finalizer. FNV-1a digests have weak avalanche: inputs
 * differing only in trailing bytes (vnode labels, similar matrices)
 * produce digests clustered in a narrow arc, which would starve
 * shards of ring coverage. Mixing every ring point and lookup key
 * through a full-avalanche finalizer spreads them uniformly without
 * giving up determinism.
 */
Digest
mix64(Digest x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Ring point of one (shard, vnode): a string digest, so the ring
 *  depends only on the indices and is reproducible everywhere. */
Digest
ringPoint(std::size_t shard, std::size_t vnode)
{
    return mix64(fingerprintString(
        "shard-" + std::to_string(shard) + "/vnode-" +
        std::to_string(vnode)));
}

} // namespace

ConsistentHashRouter::ConsistentHashRouter(
    std::size_t shards, std::size_t virtual_nodes_per_shard)
    : shards_(shards), vnodes_per_shard_(virtual_nodes_per_shard)
{
    SAP_ASSERT(shards_ >= 1, "router needs at least one shard");
    SAP_ASSERT(vnodes_per_shard_ >= 1,
               "router needs at least one virtual node per shard");
    ring_.reserve(shards_ * vnodes_per_shard_);
    for (std::size_t s = 0; s < shards_; ++s)
        for (std::size_t v = 0; v < vnodes_per_shard_; ++v)
            ring_.emplace_back(ringPoint(s, v), s);
    // Ties (identical ring points from different shards) resolve to
    // the lower shard index, deterministically.
    std::sort(ring_.begin(), ring_.end());
}

std::size_t
ConsistentHashRouter::shardFor(Digest key) const
{
    // First ring point at or clockwise-after the (mixed) key; wrap
    // to the ring's start past the last point.
    const Digest point = mix64(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), point,
        [](const std::pair<Digest, std::size_t> &entry, Digest k) {
            return entry.first < k;
        });
    if (it == ring_.end())
        it = ring_.begin();
    return it->second;
}

} // namespace sap
