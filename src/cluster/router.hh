/**
 * @file
 * Consistent-hash routing of plan digests onto shards.
 *
 * The cluster pins every matrix to exactly one shard so its prepared
 * plan is built once, cached once, and never contended across
 * shards. Routing must therefore be (a) deterministic — any router
 * with the same configuration, in any process, maps a key to the
 * same shard — and (b) stable under resizing: growing an
 * installation from N to N+1 arrays should re-home only ~1/(N+1) of
 * the matrices, not reshuffle everything the way modulo routing
 * does.
 *
 * Classic consistent hashing provides both: each shard contributes a
 * fixed set of virtual nodes to a 64-bit hash ring, and a key is
 * owned by the shard of the first ring point at or clockwise-after
 * it. Ring points depend only on (shard index, vnode index), so the
 * ring is reproducible from the options alone.
 */

#ifndef SAP_CLUSTER_ROUTER_HH
#define SAP_CLUSTER_ROUTER_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "serve/fingerprint.hh"

namespace sap {

/** Deterministic digest → shard map on a consistent-hash ring. */
class ConsistentHashRouter
{
  public:
    /** Virtual nodes per shard; more = smoother key distribution. */
    static constexpr std::size_t kDefaultVirtualNodes = 64;

    /**
     * @param shards Number of shards (>= 1).
     * @param virtual_nodes_per_shard Ring points per shard (>= 1).
     */
    explicit ConsistentHashRouter(
        std::size_t shards,
        std::size_t virtual_nodes_per_shard = kDefaultVirtualNodes);

    /** Owning shard of @p key, in [0, shardCount()). */
    std::size_t shardFor(Digest key) const;

    std::size_t shardCount() const { return shards_; }

    std::size_t
    virtualNodesPerShard() const
    {
        return vnodes_per_shard_;
    }

  private:
    std::size_t shards_;
    std::size_t vnodes_per_shard_;
    /** (ring point, shard), sorted by ring point. */
    std::vector<std::pair<Digest, std::size_t>> ring_;
};

} // namespace sap

#endif // SAP_CLUSTER_ROUTER_HH
