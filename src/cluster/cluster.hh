/**
 * @file
 * The multi-array cluster front end: N shards behind one door.
 *
 * The paper's size-independent scheme makes one fixed w-wide array
 * serve arbitrarily large problems; a real installation runs many
 * such arrays (the multi-processor direction of the hyper-systolic
 * line of work). Cluster models that: each shard is a self-contained
 * array installation (serve/shard.hh) with its own worker subset and
 * plan cache, and requests are routed by consistent hashing on the
 * plan digest (serve/plan_cache.hh planDigest), so
 *
 *  - a given matrix's prepared plan is built and cached on exactly
 *    one shard — aggregate plan-cache capacity scales with the shard
 *    count and no plan is duplicated;
 *  - plan-cache and stats lock contention stays bounded by one
 *    shard's thread count, not the installation's;
 *  - growing the installation re-homes only ~1/N of the matrices
 *    (cluster/router.hh).
 *
 * IO surfaces: future-based submit(), completion-callback
 * submitAsync(), completion-queue submitToQueue() for clients that
 * cannot block on futures (cluster/completion_queue.hh), and
 * submitBatch(), which groups same-matrix requests server-side into
 * a single prepared-plan streaming pass per shard.
 */

#ifndef SAP_CLUSTER_CLUSTER_HH
#define SAP_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "cluster/completion_queue.hh"
#include "cluster/router.hh"
#include "serve/shard.hh"

namespace sap {

/** Whole-cluster statistics: summed counters plus per-shard detail. */
struct ClusterStats
{
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
    std::uint64_t crossCheckFailures = 0;
    /** Counters summed over every shard's plan cache. */
    PlanCacheStats planCache;
    /** Full per-shard snapshots; index = shard id. */
    std::vector<ServerStats> shards;
};

/**
 * Sharded serving front end: routes each request to the shard that
 * owns its plan digest, so one matrix's prepared plan lives on
 * exactly one shard (see file comment).
 *
 * Thread-safety: all submission surfaces and stats() may be called
 * from any number of client threads; completion callbacks run on
 * the serving shard's worker thread.
 *
 * Ownership: the cluster owns its shards (and through them all
 * worker threads and plan caches); it does NOT own CompletionQueues
 * passed to submitToQueue() — keep a queue alive until its
 * completions arrive, which destroying the cluster first guarantees
 * (destruction drains every shard, so returned futures become
 * ready, accepted callbacks fire, and queued completions are
 * pushed). References returned by shard() stay valid for the
 * cluster's lifetime.
 */
class Cluster
{
  public:
    struct Options
    {
        /** Number of shards (array installations). */
        std::size_t shards = 2;
        /** Worker threads dedicated to each shard. */
        std::size_t threadsPerShard = 2;
        /** Plans kept by each shard's LRU plan cache. */
        std::size_t planCacheCapacityPerShard =
            PlanCache::kDefaultCapacity;
        /** Ring points per shard (see cluster/router.hh). */
        std::size_t virtualNodesPerShard =
            ConsistentHashRouter::kDefaultVirtualNodes;
        /** Cross-check every request (overrides per-request flag). */
        bool crossCheckAll = false;
        /** Per-shard obs/ metrics registries (see Shard::Options). */
        bool metrics = true;
    };

    /** Cluster with default options. */
    Cluster();

    explicit Cluster(const Options &opts);

    /** Drains every shard; see class comment. */
    ~Cluster() = default;

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Number of shards. */
    std::size_t shardCount() const { return shards_.size(); }

    /**
     * The routing key of @p req: its plan digest. Deterministic in
     * the request content alone.
     */
    static Digest routingKey(const ServeRequest &req);

    /** Which shard @p req routes to, in [0, shardCount()). */
    std::size_t shardFor(const ServeRequest &req) const;

    /** Route @p req to its shard; the future resolves when served. */
    std::future<ServeResponse> submit(ServeRequest req);

    /**
     * Route @p req to its shard; @p done runs on the worker thread
     * that served it.
     */
    void submitAsync(ServeRequest req, CompletionFn done);

    /**
     * Route @p req to its shard; on completion, push
     * {@p tag, response} onto @p queue. @p queue must stay alive
     * until the completion arrives (destroying the Cluster first
     * guarantees that).
     */
    void submitToQueue(ServeRequest req, CompletionQueue *queue,
                       std::uint64_t tag);

    /**
     * As submitToQueue(), with @p digest = routingKey(req) already
     * computed — the gateway tier's FORWARD hop passes its routing
     * digest through so the matrices are hashed once per
     * installation, not once per hop. @p digest is a hint: the shard
     * plan cache confirms every digest hit with an exact matrix
     * comparison, so a wrong digest costs cache locality, never
     * correctness.
     */
    void submitToQueue(ServeRequest req, CompletionQueue *queue,
                       std::uint64_t tag, Digest digest);

    /**
     * Partition @p reqs across shards and batch-submit each
     * partition (Shard::submitBatch), so same-matrix requests are
     * served through one prepared-plan streaming pass. Returns one
     * future per request, in the original request order.
     */
    std::vector<std::future<ServeResponse>>
    submitBatch(std::vector<ServeRequest> reqs);

    /** Summed counters plus per-shard snapshots. */
    ClusterStats stats() const;

    /**
     * Whole-installation snapshot with the per-shard StatsRecorder
     * data *merged*: one ServerStats whose per-(engine, shape)
     * groups combine every shard's counts, and whose p50/p99 come
     * from the shards' concatenated latency reservoirs (exact, not
     * percentile-of-percentiles). This is what the network layer's
     * STATS frame serves; stats() keeps the per-shard detail.
     */
    ServerStats statsSnapshot() const;

    /**
     * Whole-installation obs/ metrics: every shard's registry
     * snapshot merged *exactly* — counters and histogram buckets
     * add, gauges follow their GaugeAgg — so cluster p50/p99 equal
     * what one process observing every request would report. Empty
     * when Options::metrics is off. The network layer's METRICS
     * frame serves this (plus its own wire-level registry).
     */
    MetricsSnapshot metricsSnapshot() const;

    /**
     * Requests enqueued but not yet picked up, summed across shards
     * (0 when Options::metrics is off) — the health model's
     * saturation input, cheaper than a metrics snapshot.
     */
    double queueDepth() const;

    /** Direct access to shard @p i (for tests and monitoring). */
    const Shard &shard(std::size_t i) const;

  private:
    Options opts_;
    ConsistentHashRouter router_;
    /** unique_ptr: Shard is non-movable (owns threads and mutexes). */
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace sap

#endif // SAP_CLUSTER_CLUSTER_HH
