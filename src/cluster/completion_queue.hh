/**
 * @file
 * Pollable completion queue for the cluster's async IO surface.
 *
 * The future-based submit() forces every client thread to block on
 * its own responses. A completion queue inverts that: workers push
 * tagged completions as they finish, and any number of consumer
 * threads drain them with next() (blocking) or tryNext()
 * (non-blocking) — the queue-pair idiom of RDMA/NVMe-style IO, and
 * the natural shape for an event-loop client that multiplexes many
 * in-flight requests.
 *
 * Lifetime: keep the queue alive until every request submitted
 * against it has completed (destroying the owning Cluster first is
 * sufficient — its shards drain on destruction). shutdown() wakes
 * blocked consumers; next() then returns the remaining completions
 * and finally false.
 */

#ifndef SAP_CLUSTER_COMPLETION_QUEUE_HH
#define SAP_CLUSTER_COMPLETION_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "serve/shard.hh"

namespace sap {

/** One finished request: the caller's tag plus the response. */
struct Completion
{
    /** Caller-chosen request identifier, echoed back verbatim. */
    std::uint64_t tag = 0;
    ServeResponse response;
};

/**
 * Unbounded MPMC queue of completions.
 *
 * Thread-safety: all members may be called concurrently from any
 * number of producer and consumer threads; push/shutdown notify
 * under the lock, so drain-then-destroy is race-free.
 *
 * Ownership: the queue owns the completions it holds and nothing
 * else; the caller owns the queue itself and must keep it alive
 * until every request submitted against it has completed (see the
 * file comment — destroying the submitting Cluster first is
 * sufficient).
 */
class CompletionQueue
{
  public:
    CompletionQueue() = default;

    CompletionQueue(const CompletionQueue &) = delete;
    CompletionQueue &operator=(const CompletionQueue &) = delete;

    /** Enqueue @p c and wake one blocked consumer. */
    void push(Completion c);

    /**
     * Pop the oldest completion into @p out, blocking while the
     * queue is empty and not shut down.
     *
     * @return false only after shutdown() once the queue is drained.
     */
    bool next(Completion *out);

    /** Pop into @p out without blocking; false when empty. */
    bool tryNext(Completion *out);

    /**
     * Mark the queue finished: blocked consumers wake, drain what is
     * queued, then next() returns false. push() stays legal (late
     * completions are still delivered to pollers).
     */
    void shutdown();

    /** Completions currently queued. */
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Completion> queue_;
    bool shutdown_ = false;
};

} // namespace sap

#endif // SAP_CLUSTER_COMPLETION_QUEUE_HH
