#include "cluster/completion_queue.hh"

namespace sap {

void
CompletionQueue::push(Completion c)
{
    // Notify *under* the lock: a consumer blocked in next() cannot
    // re-acquire the mutex (and thus pop, return, and potentially
    // destroy this queue) until we release it, so the signal always
    // completes before destruction may begin. Notifying after the
    // unlock would race a worker's notify against a consumer-side
    // destructor.
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(c));
    cv_.notify_one();
}

bool
CompletionQueue::next(Completion *out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty())
        return false; // shut down and drained
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

bool
CompletionQueue::tryNext(Completion *out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty())
        return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
}

void
CompletionQueue::shutdown()
{
    // Under the lock for the same destruction-safety reason as
    // push().
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    cv_.notify_all();
}

std::size_t
CompletionQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace sap
