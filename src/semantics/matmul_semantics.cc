/**
 * @file
 * Semantics (fast-mode) execution of the hexagonal mat-mul plan:
 * every O-band value accumulated in the array's MAC order
 * (ascending k along the reduction), with the Appendix feedback
 * composition replayed through the plan's routing tables. O values
 * are processed in exit-cycle order, which topologically orders the
 * feedback dependencies (a value always exits strictly before the
 * cycle its consumer is injected).
 */

#include <algorithm>
#include <vector>

#include "analysis/formulas.hh"
#include "base/logging.hh"
#include "dbt/matmul_plan.hh"

namespace sap {

MatMulPlanResult
MatMulPlan::runSemantics(const Dense<Scalar> &e) const
{
    const MatMulDims &d = dims();
    const Index w = d.w;
    const Index N = d.order();
    SAP_ASSERT(e.rows() == d.n && e.cols() == d.m,
               "E must be n×m = ", d.n, "x", d.m);
    Dense<Scalar> e_pad = e.paddedTo(d.nbar * w, d.mbar * w);

    // Captured O values, keyed by bandIdx of the scalar position.
    std::vector<Scalar> captured(routes_.size(), 0);
    Dense<Scalar> c_pad(d.nbar * w, d.mbar * w);
    Index macs = 0;

    for (Cycle t = 0; t <= sched_.horizon; ++t) {
        for (const HexIoSchedule::CEvent &ev : sched_.oEvents[t]) {
            const Index i = ev.i;
            const Index j = ev.j;
            const std::size_t slot = bandIdx(i, j);

            const InputRoute &rt = routes_[slot];
            Scalar acc = 0;
            switch (rt.kind) {
              case InputRoute::Kind::Zero:
                acc = 0;
                break;
              case InputRoute::Kind::FromE:
                acc = e_pad(rt.r, rt.c);
                break;
              case InputRoute::Kind::FromO:
                acc = captured[bandIdx(rt.r, rt.c)];
                break;
            }

            // The c value for (i, j) meets a(i, k)·b(k, j) at PE
            // (k−i, k−j) for ascending k — the array's MAC order.
            const Index klo = std::max(i, j);
            const Index khi = std::min(std::min(i, j) + w - 1, N - 1);
            for (Index k = klo; k <= khi; ++k) {
                acc = acc + transform_.abar().at(i, k) *
                                transform_.bbar().at(k, j);
                ++macs;
            }

            captured[slot] = acc;
            if (extract_row_[slot] >= 0)
                c_pad(extract_row_[slot], extract_col_[slot]) = acc;
        }
    }

    MatMulPlanResult res;
    res.c = c_pad.topLeft(d.n, d.m);
    res.stats.cycles = formulas::tMatMul(w, d.pbar, d.nbar, d.mbar);
    res.stats.peCount = w * w;
    res.stats.usefulMacs = macs;
    res.totalCycles = sched_.horizon + 1;
    return res;
}

} // namespace sap
