/**
 * @file
 * Semantics replay of the linear contraflow array: the band mat-vec
 * accumulation performed as plain host arithmetic, in exactly the
 * order the array performs it.
 *
 * The paper's DBT scheme fixes the operation order independently of
 * problem size: row i of the band starts from b̄_i (external or the
 * fed-back ȳ_{i−w}) and accumulates a(i, i+d)·x̄_{i+d} for
 * d = 0 … w−1 as it traverses the array from PE w−1 down to PE 0.
 * Replaying that order with the same `acc + a·x` expression the PE
 * evaluates (sim/linear_array.cc) makes the result bit-identical to
 * the cycle simulation — which is what lets the fast execution mode
 * (engine/engine.hh, ExecMode::Fast) serve numerics without paying
 * for simulation, and what validate mode diffs against.
 */

#ifndef SAP_SEMANTICS_BAND_KERNEL_HH
#define SAP_SEMANTICS_BAND_KERNEL_HH

#include "mat/vector.hh"
#include "sim/linear_driver.hh"

namespace sap {

/** Output of the band mat-vec semantics kernel. */
struct BandMatVecSemantics
{
    /** Complete transformed output ȳ (finals and partials),
     *  bit-identical to LinearRunResult::ybar. */
    Vec<Scalar> ybar;
    /** True if any row consumed the feedback path (m̄ ≥ 2). */
    bool usedFeedback = false;
};

/**
 * Replay @p spec in the array's operation order on the host.
 *
 * @pre spec passes BandMatVecSpec::validate().
 */
BandMatVecSemantics runBandMatVecSemantics(const BandMatVecSpec &spec);

} // namespace sap

#endif // SAP_SEMANTICS_BAND_KERNEL_HH
