/**
 * @file
 * Semantics (fast-mode) execution of the output-stationary mesh
 * plan: each w×w output block accumulated over the concatenated
 * reduction in stream order (ascending t), exactly as PE (r, q)
 * sees the skewed a/b streams meet.
 */

#include "analysis/formulas.hh"
#include "base/logging.hh"
#include "sim/mesh_array.hh"

namespace sap {

MeshRunResult
MeshMatMulPlan::runSemantics(const Dense<Scalar> &e) const
{
    SAP_ASSERT(e.rows() == n_ && e.cols() == m_, "E shape ",
               e.rows(), "x", e.cols(), " != ", n_, "x", m_);

    MeshRunResult res;
    res.c = Dense<Scalar>(n_, m_);
    const Index ptot = pbar_ * w_; // concatenated reduction length

    for (Index i = 0; i < nbar_; ++i) {
        for (Index j = 0; j < mbar_; ++j) {
            for (Index r = 0; r < w_; ++r) {
                for (Index q = 0; q < w_; ++q) {
                    const Index gi = i * w_ + r;
                    const Index gj = j * w_ + q;
                    // Preload E (zero on the padded fringe), then
                    // accumulate the full padded reduction — padded
                    // samples are valid zeros in the simulator too.
                    Scalar acc = (gi < n_ && gj < m_) ? e(gi, gj) : 0;
                    for (Index t = 0; t < ptot; ++t)
                        acc += a_padded_(gi, t) * b_padded_(t, gj);
                    if (gi < n_ && gj < m_)
                        res.c(gi, gj) = acc;
                }
            }
        }
    }

    res.stats.cycles = formulas::tMesh(w_, pbar_, nbar_, mbar_);
    res.stats.peCount = w_ * w_;
    res.stats.usefulMacs = nbar_ * mbar_ * w_ * w_ * ptot;
    return res;
}

} // namespace sap
