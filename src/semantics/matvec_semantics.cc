/**
 * @file
 * Semantics (fast-mode) execution of the linear-family mat-vec
 * plans: plain, overlapped, and grouped. Results are bit-identical
 * to the cycle simulators (the band kernel replays the array's
 * accumulation order); the statistics are the closed-form step
 * counts of analysis/formulas.hh, which the simulators are asserted
 * against elsewhere in the test suite.
 */

#include <algorithm>

#include "analysis/formulas.hh"
#include "base/math_util.hh"
#include "dbt/interleave.hh"
#include "dbt/matvec_plan.hh"
#include "semantics/band_kernel.hh"

namespace sap {

MatVecPlanResult
MatVecPlan::runSemantics(const Vec<Scalar> &x,
                         const Vec<Scalar> &b) const
{
    BandMatVecSpec spec = makeSpec(x, b);
    BandMatVecSemantics sem = runBandMatVecSemantics(spec);

    const MatVecDims &d = dims();
    MatVecPlanResult out;
    out.y = transform_.extractY(sem.ybar);
    out.stats.cycles = formulas::tMatVec(d.w, d.nbar, d.mbar);
    out.stats.peCount = d.w;
    // Every in-band element fires exactly one MAC.
    out.stats.usefulMacs = d.barRows() * d.w;
    out.observedFeedbackDelay =
        sem.usedFeedback ? formulas::linearFeedbackDelay(d.w) : -1;
    out.feedbackRegisters = formulas::linearFeedbackRegisters(d.w);
    return out;
}

MatVecPlanResult
MatVecPlan::runOverlappedSemantics(const Vec<Scalar> &x,
                                   const Vec<Scalar> &b) const
{
    SplitProblem split(transform_, x, b);
    BandMatVecSpec s1 = split.first();
    BandMatVecSpec s2 = split.second();
    BandMatVecSemantics r1 = runBandMatVecSemantics(s1);
    BandMatVecSemantics r2 = runBandMatVecSemantics(s2);

    const Index w = dims().w;
    // Lane completion cycles (lane 2 is offset by one); the halves
    // of an odd split are unbalanced, so this is the exact measured
    // max, not tMatVecOverlap (which assumes the balanced total).
    const Cycle last1 = 2 * (s1.rows() - 1) + 2 * w - 2;
    const Cycle last2 = 2 * (s2.rows() - 1) + 2 * w - 2 + 1;

    MatVecPlanResult out;
    out.y = split.extractY(r1.ybar, r2.ybar);
    out.stats.cycles = std::max(last1, last2) + 1;
    out.stats.peCount = w;
    out.stats.usefulMacs = (s1.rows() + s2.rows()) * w;
    out.observedFeedbackDelay =
        r1.usedFeedback ? formulas::linearFeedbackDelay(w) : -1;
    out.feedbackRegisters = formulas::linearFeedbackRegisters(w);
    return out;
}

GroupedRunResult
MatVecPlan::runGroupedSemantics(const Vec<Scalar> &x,
                                const Vec<Scalar> &b) const
{
    BandMatVecSpec spec = makeSpec(x, b);
    BandMatVecSemantics sem = runBandMatVecSemantics(spec);

    const MatVecDims &d = dims();
    GroupedRunResult res;
    res.logical.ybar = std::move(sem.ybar);
    res.logical.stats.cycles = formulas::tMatVec(d.w, d.nbar, d.mbar);
    res.logical.stats.peCount = d.w;
    res.logical.stats.usefulMacs = d.barRows() * d.w;
    res.logical.observedFeedbackDelay =
        sem.usedFeedback ? formulas::linearFeedbackDelay(d.w) : -1;
    res.logical.feedbackRegisters =
        formulas::linearFeedbackRegisters(d.w);
    res.grouped = res.logical.stats;
    res.grouped.peCount = ceilDiv(d.w, 2);
    // Adjacent contraflow cells are busy on opposite parities, so
    // 2:1 grouping is conflict-free by construction; the simulator
    // proves this cycle-by-cycle, validate mode cross-checks it.
    res.conflictFree = true;
    return res;
}

} // namespace sap
