#include "semantics/band_kernel.hh"

namespace sap {

BandMatVecSemantics
runBandMatVecSemantics(const BandMatVecSpec &spec)
{
    spec.validate();
    const Index w = spec.w();
    const Index rows = spec.rows();
    const Band<Scalar> &abar = *spec.abar;

    BandMatVecSemantics res;
    res.ybar = Vec<Scalar>(rows);
    for (Index i = 0; i < rows; ++i) {
        Scalar acc;
        if (spec.bIsExternal[i]) {
            acc = spec.externalB[i];
        } else {
            // Feedback: ȳ_{i−w} re-enters as b̄_i (validate()
            // guarantees i >= w for feedback rows).
            acc = res.ybar[i - w];
            res.usedFeedback = true;
        }
        // ȳ_i enters at PE w−1 and sheds one diagonal per cell on
        // its way to PE 0: ascending d is the array's MAC order.
        for (Index d = 0; d < w; ++d)
            acc = acc + abar.at(i, i + d) * spec.xbar[i + d];
        res.ybar[i] = acc;
    }
    return res;
}

} // namespace sap
