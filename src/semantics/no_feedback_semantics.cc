/**
 * @file
 * Semantics (fast-mode) execution of the no-feedback baseline:
 * every w×w block replayed through the mat-vec semantics kernel in
 * the same row-major order, partials summed on the host exactly as
 * the simulated baseline does.
 */

#include "base/logging.hh"
#include "baseline/block_no_feedback.hh"

namespace sap {

BlockNoFeedbackResult
BlockNoFeedbackPlan::runSemantics(const Vec<Scalar> &x,
                                  const Vec<Scalar> &b) const
{
    SAP_ASSERT(x.size() == cols_ && b.size() == rows_,
               "shape mismatch");
    Vec<Scalar> xp = x.paddedTo(mbar_ * w_);

    Vec<Scalar> y_acc(nbar_ * w_);
    BlockNoFeedbackResult res;
    res.stats.peCount = w_;

    for (Index i = 0; i < nbar_; ++i) {
        for (Index j = 0; j < mbar_; ++j) {
            const MatVecPlan &plan =
                blocks_[static_cast<std::size_t>(i * mbar_ + j)];
            Vec<Scalar> xb = xp.slice(j * w_, w_);
            MatVecPlanResult r =
                plan.runSemantics(xb, Vec<Scalar>(w_));
            for (Index t = 0; t < w_; ++t) {
                y_acc[i * w_ + t] += r.y[t];
                ++res.hostAdds;
            }
            res.perBlockCycles = r.stats.cycles;
            res.stats.cycles += r.stats.cycles;
            res.stats.usefulMacs += r.stats.usefulMacs;
        }
    }

    res.y = Vec<Scalar>(rows_);
    for (Index i = 0; i < rows_; ++i) {
        res.y[i] = y_acc[i] + b[i];
        ++res.hostAdds;
    }
    return res;
}

} // namespace sap
