/**
 * @file
 * Semantics (fast-mode) execution of the blocked triangular solve:
 * panel updates replayed through the mat-vec semantics kernel, each
 * diagonal block forward-substituted in the back-substitution
 * array's retirement order (row i sheds l_ik·y_k for ascending
 * k < i, then divides by l_ii).
 */

#include "analysis/formulas.hh"
#include "base/logging.hh"
#include "solve/trisolve_plan.hh"

namespace sap {

TriSolvePlanResult
TriSolvePlan::runSemantics(const Vec<Scalar> &b) const
{
    SAP_ASSERT(b.size() == n_, "b length ", b.size(), " != order ",
               n_);
    Vec<Scalar> bp = b.paddedTo(nbar_ * w_);

    TriSolvePlanResult res;
    res.stats.peCount = w_;
    Vec<Scalar> y(nbar_ * w_);

    for (Index r = 0; r < nbar_; ++r) {
        Vec<Scalar> rhs = bp.slice(r * w_, w_);
        if (r > 0) {
            const MatVecPlan &panel =
                panels_[static_cast<std::size_t>(r - 1)];
            MatVecPlanResult pr = panel.runSemantics(
                y.slice(0, r * w_), Vec<Scalar>(w_));
            for (Index i = 0; i < w_; ++i)
                rhs[i] -= pr.y[i];
            res.stats.cycles += pr.stats.cycles;
            res.stats.usefulMacs += pr.stats.usefulMacs;
        }

        // Diagonal block: only the lower triangle of the stored
        // block is meaningful (the blocks keep whatever the dense
        // source held above the diagonal, as the array never reads
        // those positions).
        const Dense<Scalar> &blk =
            diag_[static_cast<std::size_t>(r)];
        for (Index i = 0; i < w_; ++i) {
            Scalar s = rhs[i];
            for (Index k = 0; k < i; ++k)
                s = s - blk(i, k) * y[r * w_ + k];
            y[r * w_ + i] = s / blk(i, i);
        }
        res.stats.cycles += 2 * w_ - 1;
        // Cell k performs one op per row i >= k: w(w+1)/2 divides
        // and MACs per block (TriArray::usefulOps()).
        res.stats.usefulMacs += w_ * (w_ + 1) / 2;
    }

    res.y = y.slice(0, n_);
    return res;
}

} // namespace sap
