# Locate GoogleTest, preferring whatever the host already provides so
# that offline builds work, and falling back to FetchContent only when
# nothing is installed:
#
#   1. an installed package (find_package, e.g. libgtest-dev's cmake
#      config or a conda/vcpkg install),
#   2. the Debian/Ubuntu source package at /usr/src/googletest
#      (libgtest-dev ships sources, not binaries, on older releases),
#   3. FetchContent from the upstream GitHub release (needs network).
#
# Afterwards the targets GTest::gtest and GTest::gtest_main exist.

include(FetchContent)

# Under a sanitizer every linked object must be instrumented, so
# skip any pre-built system GTest and compile it from source with
# the global -fsanitize flags.
if(NOT SAP_TSAN AND NOT SAP_ASAN)
    find_package(GTest QUIET)
endif()

if(GTest_FOUND)
    message(STATUS "GoogleTest: using installed package")
elseif(EXISTS /usr/src/googletest/CMakeLists.txt)
    message(STATUS "GoogleTest: building Debian source package")
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    add_subdirectory(/usr/src/googletest
                     ${CMAKE_BINARY_DIR}/_deps/googletest-build
                     EXCLUDE_FROM_ALL)
    if(NOT TARGET GTest::gtest)
        add_library(GTest::gtest ALIAS gtest)
        add_library(GTest::gtest_main ALIAS gtest_main)
    endif()
else()
    message(STATUS "GoogleTest: fetching from upstream")
    set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_Declare(googletest
        URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
        URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    FetchContent_MakeAvailable(googletest)
endif()

include(GoogleTest)
