/**
 * @file
 * D-MM and M-MM reproduction: measured feedback delays (regular,
 * main diagonal, the two irregular classes) and storage peaks of
 * the hexagonal spiral feedback vs. the paper's published
 * expressions. Our tightest linear schedule realizes the irregular
 * classes as 3w(n̄−1)p̄+w and 3w·n̄p̄(m̄−1)+w, which coincide with the
 * paper's 6(w−1)(n̄−1)p̄+w and 6n̄p̄(m̄−1)(w−1)+w at w = 2 (see
 * EXPERIMENTS.md).
 */

#include "bench/bench_common.hh"

#include <algorithm>

#include "analysis/formulas.hh"
#include "analysis/sweep.hh"
#include "base/table.hh"
#include "dbt/matmul_plan.hh"
#include "mat/generate.hh"

namespace sap {
namespace {

/** One rendered table row; computed per config on the sweep pool
 *  (analysis/sweep.hh runConfigSweep — pure function of the config,
 *  so the fanned-out table matches a serial run). */
std::vector<std::string>
measurePoint(const MatMulConfig &cfg)
{
    const Index w = cfg.w;
    const Index nbar = cfg.n / w, pbar = cfg.p / w, mbar = cfg.m / w;
    Dense<Scalar> a = randomIntDense(cfg.n, cfg.p, 90 + w + nbar);
    Dense<Scalar> b = randomIntDense(cfg.p, cfg.m, 91 + w + mbar);
    MatMulPlan plan(a, b, w);
    MatMulPlanResult r = plan.run(Dense<Scalar>(cfg.n, cfg.m));
    const SpiralFeedback &fb = *r.feedback;

    auto uniq = [](std::vector<Cycle> v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        std::string s;
        for (Cycle c : v)
            s += (s.empty() ? "" : "/") + std::to_string(c);
        return s.empty() ? std::string("-") : s;
    };

    Cycle ours_restart = 3 * w * (nbar - 1) * pbar + w;
    Cycle ours_llast = 3 * w * nbar * pbar * (mbar - 1) + w;
    return {std::to_string(w), std::to_string(nbar),
            std::to_string(pbar), std::to_string(mbar),
            uniq(fb.pairDelays()),
            std::to_string(formulas::hexRegularDelay(w)),
            uniq(fb.mainDiagDelays()),
            std::to_string(formulas::hexMemMainDiag(w)),
            uniq(fb.irregularDelays()), std::to_string(ours_restart),
            std::to_string(formulas::hexDelayU0j(w, nbar, pbar)),
            uniq(fb.irregularDelays()), std::to_string(ours_llast),
            std::to_string(
                formulas::hexDelayLlast(w, nbar, pbar, mbar)),
            std::to_string(fb.peakIrregularOccupancy()),
            std::to_string(formulas::hexMemIrregular(w))};
}

void
print()
{
    printHeader("D-MM / M-MM",
                "hexagonal feedback delays and memory elements");

    // The feedback sweep keeps the original's tighter grid (the
    // delay classes only need a few shapes each), expressed as
    // MatMulConfigs so it rides the shared runner.
    std::vector<MatMulConfig> configs;
    for (Index w : {2, 3, 4})
        for (Index nbar : {2, 3})
            for (Index pbar : {2})
                for (Index mbar : {2, 3})
                    configs.push_back(
                        {w, nbar * w, pbar * w, mbar * w});

    Table t({"w", "n̄", "p̄", "m̄", "reg delay", "paper", "diag delay",
             "paper", "irr U/L", "ours", "paper", "irr L-last",
             "ours", "paper", "irr pool peak", "paper pool"});
    for (std::vector<std::string> &row :
         runConfigSweep(configs, defaultSweepThreads(), measurePoint))
        t.addRow(std::move(row));
    std::printf("%s", t.render().c_str());
    std::printf("regular delay = w and main-diagonal delay = 2w hold "
                "exactly for every shape (paper claims).\n");
}

void
BM_FeedbackHeavyRun(benchmark::State &state)
{
    Index w = state.range(0);
    Dense<Scalar> a = randomIntDense(3 * w, 2 * w, 1);
    Dense<Scalar> b = randomIntDense(2 * w, 3 * w, 2);
    MatMulPlan plan(a, b, w);
    Dense<Scalar> e(3 * w, 3 * w);
    for (auto _ : state) {
        MatMulPlanResult r = plan.run(e);
        benchmark::DoNotOptimize(r.feedback->transferCount());
    }
}
BENCHMARK(BM_FeedbackHeavyRun)->Arg(2)->Arg(3)->Arg(4);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
