/**
 * @file
 * Figure 3 reproduction: cycle-by-cycle input/output data flow of
 * the linear array solving the transformed problem with n=6, m=9,
 * w=3 — the paper's 39-cycle example. Prints one row per clock with
 * the x input, the y-side input (external b or feedback) and the
 * array output, using the paper's element labels.
 */

#include "bench/bench_common.hh"

#include "dbt/matvec_plan.hh"
#include "mat/generate.hh"

namespace sap {
namespace {

void
print()
{
    printHeader("F3", "input/output data flow, n=6 m=9 w=3 "
                      "(39 computational cycles)");

    Dense<Scalar> a = coordinateCoded(6, 9);
    Vec<Scalar> x = randomIntVec(9, 7);
    Vec<Scalar> b = randomIntVec(6, 8);
    MatVecPlan plan(a, 3);
    MatVecPlanResult r = plan.run(x, b, /*record_trace=*/true);
    const MatVecDims &d = plan.dims();

    std::printf("measured steps T = %lld (paper: 39)\n",
                (long long)r.stats.cycles);
    std::printf("feedback delay = %lld cycles through %lld registers "
                "(paper: w = 3)\n\n",
                (long long)r.observedFeedbackDelay,
                (long long)r.feedbackRegisters);

    // Relabel transformed indices in the paper's notation.
    auto x_label = [&](Index j) {
        Index elem = j < d.blockCount() * d.w
                         ? ((j / d.w) % d.mbar) * d.w + j % d.w
                         : j - d.blockCount() * d.w;
        return "x" + std::to_string(elem);
    };
    auto y_label = [&](Index i) {
        Index k = i / d.w;
        Index r_orig = k / d.mbar;
        Index stage = k % d.mbar;
        Index elem = r_orig * d.w + i % d.w;
        if ((k + 1) % d.mbar == 0)
            return "y" + std::to_string(elem);
        return "y" + std::to_string(elem) + "^" +
               std::to_string(stage);
    };
    auto b_label = [&](Index i) {
        Index k = i / d.w;
        Index elem = (k / d.mbar) * d.w + i % d.w;
        return "b" + std::to_string(elem);
    };

    Cycle horizon = r.stats.cycles + 1;
    std::vector<std::string> xs(horizon), bs(horizon), ys(horizon);
    for (const TraceEvent &e : r.trace.events()) {
        if (e.cycle >= horizon)
            continue;
        switch (e.port) {
          case Port::XIn:
            xs[e.cycle] = x_label(e.index);
            break;
          case Port::BIn:
            bs[e.cycle] = b_label(e.index);
            break;
          case Port::FbIn:
            bs[e.cycle] = y_label(e.index - d.w) + "->fb";
            break;
          case Port::YOut:
            ys[e.cycle] = y_label(e.index);
            break;
          default:
            break;
        }
    }

    std::printf("%6s  %-6s %-10s %-8s\n", "clock", "x in", "y/b in",
                "y out");
    for (Cycle t = 0; t < horizon; ++t) {
        if (xs[t].empty() && bs[t].empty() && ys[t].empty())
            continue;
        std::printf("%6lld  %-6s %-10s %-8s\n", (long long)t,
                    xs[t].c_str(), bs[t].c_str(), ys[t].c_str());
    }
}

void
BM_PaperExampleRun(benchmark::State &state)
{
    Dense<Scalar> a = randomIntDense(6, 9, 1);
    Vec<Scalar> x = randomIntVec(9, 2);
    Vec<Scalar> b = randomIntVec(6, 3);
    MatVecPlan plan(a, 3);
    for (auto _ : state) {
        MatVecPlanResult r = plan.run(x, b);
        benchmark::DoNotOptimize(r.y);
    }
}
BENCHMARK(BM_PaperExampleRun);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
