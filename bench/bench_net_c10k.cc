/**
 * @file
 * PERF: the C10K front door — request latency through the gateway
 * while thousands of idle connections are parked on the same event
 * loop (engineering data, not a paper artifact).
 *
 * This is the reason net/ moved from poll() to epoll: a
 * level-triggered epoll wait costs O(ready), so parked connections
 * are free, while poll() rescans every registered descriptor per
 * wakeup and a mostly-idle descriptor set taxes every hot request.
 * The bench parks 0 / 1,000 / 5,000 idle client connections on a
 * gateway fronting two live backends, then measures sequential
 * submit latency from one hot client at each level. The figure of
 * merit: p99 at 5,000 parked connections within 2x the p99 at zero
 * (on the poll() fallback build, SAP_NET_FORCE_POLL, it is not).
 *
 * Also measured: the accept rate while parking the herd (the
 * front-door cost of a reconnect storm).
 *
 * Emits BENCH_net_c10k.json; google-benchmark timers track the
 * event-loop watch/unwatch primitive underneath it all.
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mat/generate.hh"
#include "net/client.hh"
#include "net/event_loop.hh"
#include "net/gateway.hh"
#include "net/server.hh"

namespace sap {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Lift RLIMIT_NOFILE to its hard cap; the herd needs headroom. */
std::size_t
raiseFdLimit()
{
    rlimit lim{};
    if (::getrlimit(RLIMIT_NOFILE, &lim) != 0)
        return 0;
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
    return static_cast<std::size_t>(lim.rlim_cur);
}

/** One parked connection: connected, never speaks. */
int
parkConnection(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

ServeRequest
hotRequest(std::uint64_t seed)
{
    ServeRequest req;
    req.engine = "linear";
    req.plan = EnginePlan::matVec(randomIntDense(6, 6, seed),
                                  randomIntVec(6, seed + 1),
                                  randomIntVec(6, seed + 2), 3);
    return req;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

double percentileRatioNote(const std::vector<BenchJsonEntry> &json);

void
print()
{
    printHeader("net_c10k",
                "gateway request latency vs parked connections (" +
                    std::string(EventLoop::backendName()) + ")");

    std::size_t fd_cap = raiseFdLimit();
    // Each parked connection holds one fd here and one in the
    // gateway; leave headroom for backends, clients, and the runtime.
    const std::size_t kHerd[] = {0, 1000, 5000};
    std::size_t max_herd = kHerd[2];
    if (fd_cap > 0 && fd_cap < 2 * max_herd + 256) {
        std::printf("  (fd limit %zu too low; capping herd)\n",
                    fd_cap);
        max_herd = fd_cap > 512 ? (fd_cap - 256) / 2 : 0;
    }

    NetServer::Options bopts;
    bopts.cluster.shards = 2;
    bopts.cluster.threadsPerShard = 2;
    NetServer a(bopts), b(bopts);
    SAP_ASSERT(a.start() && b.start(), "backend start failed");

    Gateway::Options gopts;
    gopts.backends = {{"127.0.0.1", a.port(), 0},
                      {"127.0.0.1", b.port(), 0}};
    Gateway gw(gopts);
    SAP_ASSERT(gw.start(), "gateway start failed");
    while (gw.routableBackends() != 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    // The hot subset: 64 live client connections driven round-robin
    // from one thread (the acceptance axis is connection count on
    // the event loop, not driver parallelism — one CPU hosts this
    // whole installation).
    const std::size_t kHot = 64;
    std::vector<std::unique_ptr<NetClient>> hot;
    for (std::size_t i = 0; i < kHot; ++i) {
        hot.push_back(std::make_unique<NetClient>());
        SAP_ASSERT(hot.back()->connect("127.0.0.1", gw.port()),
                   "hot client connect failed");
    }
    // Warm the plan caches and the route path.
    for (std::size_t i = 0; i < kHot; ++i)
        SAP_ASSERT(hot[i]->submit(hotRequest(77)).transportOk,
                   "warmup submit failed");

    std::vector<BenchJsonEntry> json;
    std::vector<int> parked;
    parked.reserve(max_herd);
    double p99_baseline = 0;

    std::printf("%10s %10s %10s %10s %12s\n", "idle conns",
                "p50 us", "p99 us", "mean us", "req/s");
    for (std::size_t herd : kHerd) {
        if (herd > max_herd)
            break;
        // Park connections up to this level, measuring accept rate.
        double park_wall = 0;
        std::size_t to_add = herd - parked.size();
        if (to_add > 0) {
            auto t0 = std::chrono::steady_clock::now();
            while (parked.size() < herd) {
                int fd = parkConnection(gw.port());
                SAP_ASSERT(fd >= 0, "park connect failed");
                parked.push_back(fd);
                // On a single-CPU host a tight connect loop outruns
                // the accept loop's scheduling quantum; yield every
                // so often so the herd queues instead of shedding
                // SYNs onto kernel retry timers.
                if (parked.size() % 256 == 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
            }
            park_wall = secondsSince(t0);
        }

        const int kRequests = 448; // 7 round-robin laps of the 64
        std::vector<double> micros;
        micros.reserve(kRequests);
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kRequests; ++i) {
            auto r0 = std::chrono::steady_clock::now();
            NetClient::Result r =
                hot[static_cast<std::size_t>(i) % kHot]->submit(
                    hotRequest(77));
            SAP_ASSERT(r.transportOk && r.response.ok,
                       "hot submit failed");
            micros.push_back(secondsSince(r0) * 1e6);
        }
        double wall = secondsSince(t0);
        double p50 = percentile(micros, 0.50);
        double p99 = percentile(micros, 0.99);
        double sum = 0;
        for (double m : micros)
            sum += m;
        double mean = sum / kRequests;
        double rps = kRequests / wall;
        if (herd == 0)
            p99_baseline = p99;
        std::printf("%10zu %10.1f %10.1f %10.1f %12.0f\n", herd, p50,
                    p99, mean, rps);

        BenchJsonEntry entry;
        entry.name = "c10k_latency";
        entry.config = {{"idle_conns", std::to_string(herd)},
                        {"hot_connections", std::to_string(kHot)},
                        {"hot_requests", std::to_string(kRequests)},
                        {"event_loop", EventLoop::backendName()},
                        {"backends", "2"}};
        entry.metrics = {{"p50_micros", p50},
                         {"p99_micros", p99},
                         {"mean_micros", mean},
                         {"req_per_s", rps}};
        if (herd == max_herd || herd == kHerd[2])
            entry.metrics.push_back(
                {"p99_vs_idle0",
                 p99_baseline > 0 ? p99 / p99_baseline : 0});
        if (to_add > 0 && park_wall > 0)
            entry.metrics.push_back(
                {"accept_per_s",
                 static_cast<double>(to_add) / park_wall});
        json.push_back(std::move(entry));
    }
    if (p99_baseline > 0 && !json.empty())
        std::printf("p99 at %zu parked vs 0: %.2fx\n", max_herd,
                    percentileRatioNote(json));

    for (int fd : parked)
        ::close(fd);
    writeBenchJson("net_c10k", json);
}

/** Pull the last entry's p99-over-baseline ratio for the summary
 *  line (0 when the herd was capped away). */
double
percentileRatioNote(const std::vector<BenchJsonEntry> &json)
{
    for (auto it = json.rbegin(); it != json.rend(); ++it)
        for (const auto &m : it->metrics)
            if (m.first == "p99_vs_idle0")
                return m.second;
    return 0;
}

//---------------------------------------------------------------------
// Tracked google-benchmark timers.
//---------------------------------------------------------------------

void
BM_EventLoopWatchUnwatch(benchmark::State &state)
{
    // The primitive under every accept/close: register a descriptor,
    // change its interest, remove it.
    EventLoop loop;
    int fds[2];
    SAP_ASSERT(::pipe(fds) == 0, "pipe failed");
    std::uint64_t key = 1;
    for (auto _ : state) {
        loop.set(fds[0], EventLoop::kRead, key);
        loop.set(fds[0], EventLoop::kRead | EventLoop::kWrite, key);
        loop.remove(fds[0]);
    }
    ::close(fds[0]);
    ::close(fds[1]);
}
BENCHMARK(BM_EventLoopWatchUnwatch);

void
BM_EventLoopWaitIdle(benchmark::State &state)
{
    // One zero-timeout wait over N watched-but-silent descriptors:
    // the per-wakeup scan cost the epoll migration removes.
    const int n = static_cast<int>(state.range(0));
    EventLoop loop;
    std::vector<std::array<int, 2>> pipes(
        static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        SAP_ASSERT(::pipe(pipes[static_cast<std::size_t>(i)].data()) ==
                       0,
                   "pipe failed");
        loop.set(pipes[static_cast<std::size_t>(i)][0],
                 EventLoop::kRead,
                 static_cast<std::uint64_t>(i) + 1);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(loop.wait(0));
    for (auto &p : pipes) {
        loop.remove(p[0]);
        ::close(p[0]);
        ::close(p[1]);
    }
}
BENCHMARK(BM_EventLoopWaitIdle)->Arg(8)->Arg(256);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
