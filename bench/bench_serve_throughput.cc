/**
 * @file
 * PERF: throughput of the serving layer (engineering data, not a
 * paper artifact).
 *
 * Two claims are measured:
 *
 *  1. Amortization: for repeated-matrix workloads, plan-cached
 *     runMany() beats per-request SystolicEngine::run() (which
 *     rebuilds the DBT transform every time) — the software form of
 *     the hyper-systolic setup-cost amortization.
 *  2. Scaling: a mixed-topology request stream through the Server
 *     speeds up with worker threads (engines are stateless, so
 *     requests parallelize; scaling flattens at the host's core
 *     count).
 *
 * The print section reports both directly; google-benchmark timers
 * cover the same paths for tracked history.
 */

#include "bench/bench_common.hh"

#include <chrono>

#include "mat/generate.hh"
#include "serve/batch.hh"
#include "serve/server.hh"

namespace sap {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One repeated-matrix workload: R (x, b) pairs against one A. */
struct MatVecWorkload
{
    Dense<Scalar> a;
    Index w;
    std::vector<EngineInputs> inputs;
};

MatVecWorkload
makeMatVecWorkload(Index s, Index w, int requests)
{
    MatVecWorkload wl;
    wl.a = randomIntDense(s, s, 1);
    wl.w = w;
    for (int i = 0; i < requests; ++i)
        wl.inputs.push_back(EngineInputs::matVec(
            randomIntVec(s, 100 + 2 * i), randomIntVec(s, 101 + 2 * i)));
    return wl;
}

/**
 * Cached-vs-uncached comparison on one engine. Uncached issues each
 * request through run() (per-request dense→band rebuild); cached
 * streams the same requests through one prepared plan.
 */
void
printAmortization(std::vector<BenchJsonEntry> *json)
{
    printHeader("SERVE-1", "plan amortization: cached runMany vs "
                           "per-request run (repeated matrix)");
    std::printf("%-10s %-22s %10s %10s %8s\n", "engine", "workload",
                "uncached", "cached", "speedup");

    struct Case
    {
        const char *engine;
        Index s, w;
        int requests;
    };
    for (const Case &c : {Case{"linear", 64, 8, 24},
                          Case{"overlapped", 64, 8, 24},
                          Case{"hex", 12, 2, 12},
                          Case{"spiral", 12, 3, 12}}) {
        auto engine = requireEngine(c.engine);
        std::vector<EngineInputs> inputs;
        EnginePlan plan = engine->kind() == ProblemKind::MatVec
            ? EnginePlan::matVec(randomIntDense(c.s, c.s, 1),
                                 Vec<Scalar>(c.s), Vec<Scalar>(c.s),
                                 c.w)
            : EnginePlan::matMul(randomIntDense(c.s, c.s, 1),
                                 randomIntDense(c.s, c.s, 2), c.w);
        for (int i = 0; i < c.requests; ++i) {
            if (engine->kind() == ProblemKind::MatVec)
                inputs.push_back(EngineInputs::matVec(
                    randomIntVec(c.s, 100 + 2 * i),
                    randomIntVec(c.s, 101 + 2 * i)));
            else
                inputs.push_back(EngineInputs::matMul(
                    randomIntDense(c.s, c.s, 100 + i)));
        }

        auto t0 = std::chrono::steady_clock::now();
        for (const EngineInputs &in : inputs) {
            EnginePlan request = plan;
            if (engine->kind() == ProblemKind::MatVec) {
                request.x = in.x;
                request.b = in.b;
            } else {
                request.e = in.e;
            }
            EngineRunResult r = engine->run(request);
            benchmark::DoNotOptimize(r);
        }
        double uncached = secondsSince(t0);

        t0 = std::chrono::steady_clock::now();
        BatchResult batch = runMany(*engine, plan, inputs);
        benchmark::DoNotOptimize(batch);
        double cached = secondsSince(t0);

        char workload[64];
        std::snprintf(workload, sizeof(workload),
                      "%lldx%lld w=%lld R=%d", (long long)c.s,
                      (long long)c.s, (long long)c.w, c.requests);
        std::printf("%-10s %-22s %8.2fms %8.2fms %7.2fx\n",
                    c.engine, workload, uncached * 1e3, cached * 1e3,
                    uncached / cached);
        json->push_back(
            {"amortization",
             {{"engine", c.engine},
              {"s", std::to_string(c.s)},
              {"w", std::to_string(c.w)},
              {"requests", std::to_string(c.requests)}},
             {{"uncached_ms", uncached * 1e3},
              {"cached_ms", cached * 1e3},
              {"speedup", uncached / cached}}});
    }
}

/**
 * Fast (semantics replay) vs simulate on cached plans: both paths
 * stream the same requests through one prepared plan, so the only
 * difference is cycle-level stepping vs the blocked replay — with
 * results bit-identical by construction (test_semantics proves it;
 * here we measure what that equivalence buys).
 */
void
printModeComparison(std::vector<BenchJsonEntry> *json)
{
    printHeader("SERVE-3", "execution mode: fast semantics replay vs "
                           "cycle simulation (cached plans)");
    std::printf("%-10s %-22s %10s %10s %8s\n", "engine", "workload",
                "simulate", "fast", "speedup");

    struct Case
    {
        const char *engine;
        Index s, w;
        int requests;
    };
    for (const Case &c : {Case{"linear", 256, 64, 16},
                          Case{"overlapped", 256, 16, 16},
                          Case{"hex", 36, 6, 6},
                          Case{"mesh", 64, 8, 8},
                          Case{"tri", 256, 32, 12}}) {
        auto engine = requireEngine(c.engine);
        EnginePlan plan;
        std::vector<EngineInputs> inputs;
        switch (engine->kind()) {
        case ProblemKind::MatVec:
            plan = EnginePlan::matVec(randomIntDense(c.s, c.s, 1),
                                      Vec<Scalar>(c.s),
                                      Vec<Scalar>(c.s), c.w);
            for (int i = 0; i < c.requests; ++i)
                inputs.push_back(EngineInputs::matVec(
                    randomIntVec(c.s, 300 + 2 * i),
                    randomIntVec(c.s, 301 + 2 * i)));
            break;
        case ProblemKind::MatMul:
            plan = EnginePlan::matMul(randomIntDense(c.s, c.s, 1),
                                      randomIntDense(c.s, c.s, 2),
                                      c.w);
            for (int i = 0; i < c.requests; ++i)
                inputs.push_back(EngineInputs::matMul(
                    randomIntDense(c.s, c.s, 300 + i)));
            break;
        case ProblemKind::TriSolve:
            plan = EnginePlan::triSolve(
                randomUnitLowerTriangular(c.s, 1), Vec<Scalar>(c.s),
                c.w);
            for (int i = 0; i < c.requests; ++i)
                inputs.push_back(
                    EngineInputs::triSolve(randomIntVec(c.s, 300 + i)));
            break;
        }
        auto prepared = engine->prepare(plan);

        double wall[2] = {0, 0};
        for (int m = 0; m < 2; ++m) {
            ExecMode mode =
                m == 0 ? ExecMode::Simulate : ExecMode::Fast;
            {
                // Untimed warm-up: touch the path once so one-time
                // allocation noise does not land on either side.
                EngineInputs in = inputs.front();
                in.mode = mode;
                EngineRunResult r =
                    engine->runPrepared(*prepared, in);
                benchmark::DoNotOptimize(r);
            }
            auto t0 = std::chrono::steady_clock::now();
            for (const EngineInputs &base : inputs) {
                EngineInputs in = base;
                in.mode = mode;
                EngineRunResult r =
                    engine->runPrepared(*prepared, in);
                benchmark::DoNotOptimize(r);
            }
            wall[m] = secondsSince(t0);
        }
        double sim_rps = c.requests / wall[0];
        double fast_rps = c.requests / wall[1];

        char workload[64];
        std::snprintf(workload, sizeof(workload),
                      "%lldx%lld w=%lld R=%d", (long long)c.s,
                      (long long)c.s, (long long)c.w, c.requests);
        std::printf("%-10s %-22s %8.2fms %8.2fms %7.2fx\n",
                    c.engine, workload, wall[0] * 1e3, wall[1] * 1e3,
                    wall[0] / wall[1]);
        json->push_back({"mode_comparison",
                         {{"engine", c.engine},
                          {"s", std::to_string(c.s)},
                          {"w", std::to_string(c.w)},
                          {"requests", std::to_string(c.requests)}},
                         {{"simulate_req_per_s", sim_rps},
                          {"fast_req_per_s", fast_rps},
                          {"speedup", wall[0] / wall[1]}}});
    }
}

/** Mixed-topology request stream through the Server, 1..4 workers. */
void
printThreadScaling(std::vector<BenchJsonEntry> *json)
{
    printHeader("SERVE-2", "server scaling: mixed-topology stream, "
                           "1..4 worker threads");
    std::printf("(host has %u hardware threads; scaling flattens "
                "beyond that)\n",
                std::thread::hardware_concurrency());
    std::printf("%-8s %10s %12s %10s\n", "threads", "requests",
                "wall", "req/s");

    const Index s = 24, w = 4;
    const int kRounds = 10;
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> bm = randomIntDense(s, s, 2);
    Dense<Scalar> lt = randomUnitLowerTriangular(s, 6);

    // Hoisted out of the timed loop: only the kind is needed to
    // build each request, not a fresh engine instance.
    std::vector<std::pair<std::string, ProblemKind>> kinds;
    for (const std::string &name : engineNames())
        kinds.emplace_back(name, requireEngine(name)->kind());

    for (std::size_t threads : {1u, 2u, 4u}) {
        Server::Options opts;
        opts.threads = threads;
        Server server(opts);

        std::vector<std::future<ServeResponse>> futures;
        auto t0 = std::chrono::steady_clock::now();
        for (int round = 0; round < kRounds; ++round) {
            for (const auto &[name, kind] : kinds) {
                ServeRequest req;
                req.engine = name;
                std::uint64_t seed = 100 + 10 * round;
                req.plan = kind == ProblemKind::MatVec
                    ? EnginePlan::matVec(a, randomIntVec(s, seed),
                                         randomIntVec(s, seed + 1),
                                         w)
                    : kind == ProblemKind::MatMul
                        ? EnginePlan::matMul(
                              a, bm, randomIntDense(s, s, seed + 2),
                              w)
                        : EnginePlan::triSolve(
                              lt, randomIntVec(s, seed + 3), w);
                futures.push_back(server.submit(std::move(req)));
            }
        }
        std::size_t ok = 0;
        for (auto &f : futures)
            ok += f.get().ok ? 1 : 0;
        double wall = secondsSince(t0);
        SAP_ASSERT(ok == futures.size(), "serving failures in bench");
        double req_per_s = static_cast<double>(futures.size()) / wall;
        std::printf("%-8zu %10zu %10.2fms %10.0f\n", threads,
                    futures.size(), wall * 1e3, req_per_s);
        json->push_back({"thread_scaling",
                         {{"threads", std::to_string(threads)},
                          {"s", std::to_string(s)},
                          {"w", std::to_string(w)}},
                         {{"wall_ms", wall * 1e3},
                          {"req_per_s", req_per_s}}});
    }
}

void
print()
{
    std::vector<BenchJsonEntry> json;
    printAmortization(&json);
    printModeComparison(&json);
    printThreadScaling(&json);
    writeBenchJson("serve_throughput", json);
}

//---------------------------------------------------------------------
// Tracked google-benchmark timers.
//---------------------------------------------------------------------

void
BM_MatVecPerRequestUncached(benchmark::State &state)
{
    const Index w = state.range(0), s = 8 * w;
    auto engine = requireEngine("linear");
    MatVecWorkload wl = makeMatVecWorkload(s, w, 1);
    EnginePlan plan = EnginePlan::matVec(wl.a, wl.inputs[0].x,
                                         wl.inputs[0].b, w);
    for (auto _ : state) {
        EngineRunResult r = engine->run(plan);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MatVecPerRequestUncached)->Arg(4)->Arg(8);

void
BM_MatVecPerRequestCached(benchmark::State &state)
{
    const Index w = state.range(0), s = 8 * w;
    auto engine = requireEngine("linear");
    MatVecWorkload wl = makeMatVecWorkload(s, w, 1);
    EnginePlan plan = EnginePlan::matVec(wl.a, wl.inputs[0].x,
                                         wl.inputs[0].b, w);
    auto prepared = engine->prepare(plan);
    for (auto _ : state) {
        EngineRunResult r =
            engine->runPrepared(*prepared, wl.inputs[0]);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MatVecPerRequestCached)->Arg(4)->Arg(8);

void
BM_ServerMixedStream(benchmark::State &state)
{
    const std::size_t threads =
        static_cast<std::size_t>(state.range(0));
    const Index s = 24, w = 4;
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> bm = randomIntDense(s, s, 2);
    Vec<Scalar> x = randomIntVec(s, 3), b = randomIntVec(s, 4);
    Dense<Scalar> e = randomIntDense(s, s, 5);
    Dense<Scalar> lt = randomUnitLowerTriangular(s, 6);

    Server::Options opts;
    opts.threads = threads;
    Server server(opts);
    std::vector<std::pair<std::string, ProblemKind>> kinds;
    for (const std::string &name : engineNames())
        kinds.emplace_back(name, requireEngine(name)->kind());

    std::size_t served = 0;
    for (auto _ : state) {
        std::vector<std::future<ServeResponse>> futures;
        for (const auto &[name, kind] : kinds) {
            ServeRequest req;
            req.engine = name;
            req.plan = kind == ProblemKind::MatVec
                ? EnginePlan::matVec(a, x, b, w)
                : kind == ProblemKind::MatMul
                    ? EnginePlan::matMul(a, bm, e, w)
                    : EnginePlan::triSolve(lt, b, w);
            futures.push_back(server.submit(std::move(req)));
        }
        for (auto &f : futures)
            served += f.get().ok ? 1 : 0;
    }
    state.counters["req/s"] = benchmark::Counter(
        static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerMixedStream)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
