/**
 * @file
 * B-PRT / B-NF reproduction: DBT against the prior art and the
 * straw-men — PRT (n̄=m̄=1 special case, array size w vs 2w−1 naive),
 * the blocked no-feedback scheme (host accumulation, per-block
 * fill/drain), and the naive dense-as-band embedding (array size
 * grows with the problem).
 */

#include "bench/bench_common.hh"

#include "analysis/formulas.hh"
#include "base/string_util.hh"
#include "base/table.hh"
#include "baseline/block_no_feedback.hh"
#include "baseline/naive_band.hh"
#include "baseline/prt.hh"
#include "dbt/matvec_plan.hh"
#include "mat/generate.hh"

namespace sap {
namespace {

void
print()
{
    printHeader("B-PRT", "PRT vs naive embedding (single w×w block)");
    {
        Table t({"w", "PRT array", "naive array", "PRT T", "PRT e"});
        for (Index w : {3, 4, 6, 8}) {
            Dense<Scalar> a = randomIntDense(w, w, 30 + w);
            PrtResult r = runPrt(a, randomIntVec(w, 1),
                                 randomIntVec(w, 2));
            t.addRow({std::to_string(w), std::to_string(w),
                      std::to_string(naiveDenseArraySize(w)),
                      std::to_string(r.stats.cycles),
                      formatReal(r.stats.utilization(), 4)});
        }
        std::printf("%s", t.render().c_str());
        std::printf("PRT halves the array (the paper's \"50%% size "
                    "reduction\"); DBT generalizes it to any n̄, m̄.\n");
    }

    printHeader("B-NF", "DBT vs block-no-feedback vs naive embedding");
    {
        Table t({"n", "m", "w", "DBT T", "DBT e", "DBT host ops",
                 "NF T", "NF e", "NF host adds", "naive array",
                 "naive e", "fits w?"});
        for (Index s : {6, 9, 12, 18}) {
            const Index w = 3;
            Dense<Scalar> a = randomIntDense(s, s, 40 + s);
            Vec<Scalar> x = randomIntVec(s, 3);
            Vec<Scalar> b = randomIntVec(s, 4);

            MatVecPlan plan(a, w);
            MatVecPlanResult dbt = plan.run(x, b);
            BlockNoFeedbackResult nf = runBlockNoFeedback(a, x, b, w);
            NaiveBandCost naive = runNaiveBand(a, x, b, w);

            t.addRow({std::to_string(s), std::to_string(s),
                      std::to_string(w),
                      std::to_string(dbt.stats.cycles),
                      formatReal(dbt.stats.utilization(), 4), "0",
                      std::to_string(nf.stats.cycles),
                      formatReal(nf.stats.utilization(), 4),
                      std::to_string(nf.hostAdds),
                      std::to_string(naive.arraySize),
                      formatReal(naive.utilization, 4),
                      naive.fitsFixedArray ? "yes" : "no"});
        }
        std::printf("%s", t.render().c_str());
        std::printf("DBT: all work inside the fixed array, fewer "
                    "steps, no host adds.\n");
    }
}

void
BM_DbtVsNoFeedback(benchmark::State &state)
{
    Index s = state.range(0);
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Vec<Scalar> x = randomIntVec(s, 2);
    Vec<Scalar> b = randomIntVec(s, 3);
    MatVecPlan plan(a, 3);
    for (auto _ : state) {
        MatVecPlanResult r = plan.run(x, b);
        benchmark::DoNotOptimize(r.y);
    }
}
BENCHMARK(BM_DbtVsNoFeedback)->Arg(9)->Arg(18)->Arg(36);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
