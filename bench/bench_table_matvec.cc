/**
 * @file
 * §2 analytic results reproduction (T-MV and E-MV): measured step
 * counts and PE utilizations of the linear array vs. the paper's
 * formulas, over a (w, n̄, m̄) sweep, including the overlapped mode
 * and PE grouping. Rows are measured in parallel over the shared
 * sweep runner (analysis/sweep.hh runConfigSweep): each point is a
 * pure function of its config, so the fanned-out table is identical
 * to a serial run.
 */

#include "bench/bench_common.hh"

#include "analysis/formulas.hh"
#include "analysis/sweep.hh"
#include "base/string_util.hh"
#include "base/table.hh"
#include "dbt/matvec_plan.hh"
#include "mat/generate.hh"

namespace sap {
namespace {

/** One rendered table row; computed per config on the sweep pool. */
std::vector<std::string>
measurePoint(const MatVecConfig &cfg)
{
    Dense<Scalar> a = randomIntDense(cfg.n, cfg.m,
                                     17 + cfg.n + cfg.m + cfg.w);
    Vec<Scalar> x = randomIntVec(cfg.m, 1);
    Vec<Scalar> b = randomIntVec(cfg.n, 2);
    MatVecPlan plan(a, cfg.w);
    const MatVecDims &d = plan.dims();
    MatVecPlanResult run = plan.run(x, b);

    std::string t_ovl_sim = "-", t_ovl_paper = "-",
                e_ovl_sim = "-", e_ovl_paper = "-";
    if (d.nbar >= 2 && d.nbar % 2 == 0) {
        MatVecPlanResult ovl = plan.runOverlapped(x, b);
        t_ovl_sim = std::to_string(ovl.stats.cycles);
        t_ovl_paper = std::to_string(
            formulas::tMatVecOverlap(d.w, d.nbar, d.mbar));
        e_ovl_sim = formatReal(ovl.stats.utilization(), 4);
        e_ovl_paper = formatReal(
            formulas::eMatVecOverlap(d.w, d.nbar, d.mbar), 4);
    }
    GroupedRunResult grouped = plan.runGroupedPlan(x, b);

    return {std::to_string(d.w), std::to_string(d.nbar),
            std::to_string(d.mbar), std::to_string(run.stats.cycles),
            std::to_string(formulas::tMatVec(d.w, d.nbar, d.mbar)),
            formatReal(run.stats.utilization(), 4),
            formatReal(formulas::eMatVec(d.w, d.nbar, d.mbar), 4),
            t_ovl_sim, t_ovl_paper, e_ovl_sim, e_ovl_paper,
            formatReal(grouped.grouped.utilization(), 4)};
}

void
print()
{
    printHeader("T-MV / E-MV",
                "mat-vec steps and utilization vs. paper formulas");

    Table t({"w", "n̄", "m̄", "T sim", "T paper", "e sim", "e paper",
             "T ovl sim", "T ovl paper", "e ovl sim", "e ovl paper",
             "e grouped"});
    for (std::vector<std::string> &row :
         runConfigSweep(standardMatVecSweep(), defaultSweepThreads(),
                        measurePoint))
        t.addRow(std::move(row));
    std::printf("%s", t.render().c_str());
    std::printf("asymptotics: e -> 1/2 (plain), e -> 1 (overlap and "
                "grouping), as n̄m̄ grows.\n");
}

void
BM_MatVecPlanRun(benchmark::State &state)
{
    Index s = state.range(0);
    Dense<Scalar> a = randomIntDense(s, s, 3);
    Vec<Scalar> x = randomIntVec(s, 4);
    Vec<Scalar> b = randomIntVec(s, 5);
    MatVecPlan plan(a, 4);
    for (auto _ : state) {
        MatVecPlanResult r = plan.run(x, b);
        benchmark::DoNotOptimize(r.y);
    }
    state.SetComplexityN(s);
}
BENCHMARK(BM_MatVecPlanRun)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oNSquared);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
