/**
 * @file
 * Ablation studies (A-OV, A-SP): what each design ingredient of the
 * paper buys.
 *
 *  - A-OV: utilization boosters of §2 — plain DBT vs two-subproblem
 *    overlap vs PE grouping vs both directions of scaling n̄m̄.
 *  - A-SP: the conclusions' sparsity-aware DBT on block-sparse
 *    inputs of varying density.
 */

#include "bench/bench_common.hh"

#include "analysis/formulas.hh"
#include "base/string_util.hh"
#include "base/table.hh"
#include "dbt/matmul_plan.hh"
#include "dbt/matvec_plan.hh"
#include "dbt/sparse_dbt.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

namespace sap {
namespace {

void printConstantDelayAblation();

void
print()
{
    printHeader("A-OV", "utilization boosters (w=4)");
    {
        Table t({"n̄=m̄", "plain T", "plain e", "overlap T",
                 "overlap e", "grouped e"});
        const Index w = 4;
        for (Index nb : {2, 4, 6, 8}) {
            Index s = nb * w;
            // One plan, three topologies, one harness: the engine
            // registry replaces the per-topology driver calls.
            EnginePlan plan = EnginePlan::matVec(
                randomIntDense(s, s, 50 + nb), randomIntVec(s, 1),
                randomIntVec(s, 2), w);
            EngineRunResult plain = runOnEngine("linear", plan);
            EngineRunResult ovl = runOnEngine("overlapped", plan);
            EngineRunResult grp = runOnEngine("grouped", plan);
            t.addRow({std::to_string(nb),
                      std::to_string(plain.stats.cycles),
                      formatReal(plain.stats.utilization(), 4),
                      std::to_string(ovl.stats.cycles),
                      formatReal(ovl.stats.utilization(), 4),
                      formatReal(grp.stats.utilization(), 4)});
        }
        std::printf("%s", t.render().c_str());
    }

    printHeader("A-SP", "sparsity-aware DBT (18x18, w=3)");
    {
        Table t({"zero-block prob", "blocks kept", "of", "T sparse",
                 "T dense", "speedup"});
        for (double prob : {0.0, 0.25, 0.5, 0.75}) {
            Dense<Scalar> a = randomBlockSparse(18, 18, 3, prob,
                                                60 + Index(prob * 100));
            Vec<Scalar> x = randomIntVec(18, 3);
            Vec<Scalar> b = randomIntVec(18, 4);

            SparseDbt sparse(a, 3);
            MatVecPlan dense_plan(a, 3);
            MatVecPlanResult dense_run = dense_plan.run(x, b);

            Cycle t_sparse;
            if (sparse.keptBlocks() > 0) {
                BandMatVecSpec spec = sparse.spec(x, b);
                LinearRunResult r = runBandMatVec(spec);
                t_sparse = r.stats.cycles;
                // Correctness double-check inside the bench.
                if (maxAbsDiff(sparse.extractY(r.ybar),
                               matVec(a, x, b)) != 0.0)
                    std::printf("  !! sparse result mismatch\n");
            } else {
                t_sparse = 0;
            }
            t.addRow({formatReal(prob, 2),
                      std::to_string(sparse.keptBlocks()),
                      std::to_string(sparse.denseBlocks()),
                      std::to_string(t_sparse),
                      std::to_string(dense_run.stats.cycles),
                      t_sparse > 0
                          ? formatReal(double(dense_run.stats.cycles) /
                                           double(t_sparse), 2)
                          : std::string("inf")});
        }
        std::printf("%s", t.render().c_str());
        std::printf("zero block rows are dropped (with zero-pair "
                    "separators where x-sharing requires), cutting "
                    "steps proportionally — the conclusions' "
                    "predicted reduction.\n");
    }

    printConstantDelayAblation();
}

void
printConstantDelayAblation()
{
    printHeader("A-CD", "hex feedback: linked band (irregular "
                        "delays) vs per-column-block subproblems "
                        "(regular delays, more steps)");
    Table t({"w", "n̄", "p̄", "m̄", "T linked", "T separated",
             "overhead", "irregular transfers avoided"});
    for (Index w : {2, 3}) {
        for (Index mbar : {2, 3}) {
            const Index nbar = 2, pbar = 2;
            Dense<Scalar> a = randomIntDense(nbar * w, pbar * w,
                                             80 + w + mbar);
            Dense<Scalar> b = randomIntDense(pbar * w, mbar * w,
                                             81 + w + mbar);

            // Linked: one transformed problem over all m̄ copies.
            MatMulPlan linked(a, b, w);
            MatMulPlanResult lr =
                linked.run(Dense<Scalar>(nbar * w, mbar * w));

            // Separated: m̄ independent problems A × B_c — the
            // paper's route to a regular delay time, "at the
            // expense of increasing the global computational time"
            // (zero-block separation between subproblems).
            Cycle t_sep = 0;
            for (Index c = 0; c < mbar; ++c) {
                Dense<Scalar> bc(pbar * w, w);
                for (Index i = 0; i < pbar * w; ++i)
                    for (Index j = 0; j < w; ++j)
                        bc(i, j) = b(i, c * w + j);
                MatMulPlan sub(a, bc, w);
                MatMulPlanResult sr =
                    sub.run(Dense<Scalar>(nbar * w, w));
                t_sep += sr.stats.cycles;
            }

            t.addRow({std::to_string(w), std::to_string(nbar),
                      std::to_string(pbar), std::to_string(mbar),
                      std::to_string(lr.stats.cycles),
                      std::to_string(t_sep),
                      formatReal(double(t_sep) /
                                     double(lr.stats.cycles), 2),
                      std::to_string(
                          lr.feedback->irregularDelays().size())});
        }
    }
    std::printf("%s", t.render().c_str());
    std::printf("the linked band amortizes fill/drain across copies; "
                "separation simplifies the control (constant delays) "
                "but repeats it per column block.\n");
}

void
BM_SparseVsDense(benchmark::State &state)
{
    double prob = state.range(0) / 100.0;
    Dense<Scalar> a = randomBlockSparse(24, 24, 3, prob, 70);
    Vec<Scalar> x = randomIntVec(24, 5);
    Vec<Scalar> b = randomIntVec(24, 6);
    SparseDbt sparse(a, 3);
    for (auto _ : state) {
        BandMatVecSpec spec = sparse.spec(x, b);
        if (sparse.keptBlocks() > 0) {
            LinearRunResult r = runBandMatVec(spec);
            benchmark::DoNotOptimize(r.ybar);
        }
    }
}
BENCHMARK(BM_SparseVsDense)->Arg(0)->Arg(50)->Arg(75);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
