/**
 * @file
 * Shared infrastructure for the reproduction benchmarks.
 *
 * Every bench binary regenerates one figure or analytic table of
 * the paper: it first prints the paper-style rows to stdout (so
 * running all binaries reproduces the evaluation) and then runs
 * google-benchmark timers over the simulator hot paths.
 *
 * Benchmarks drive the simulators through the unified engine layer
 * (engine/registry.hh) instead of hand-rolled per-topology loops:
 * a plan factory plus an engine name is a complete benchmark, and
 * newly registered topologies are picked up automatically by
 * registerEngineSweep().
 */

#ifndef SAP_BENCH_BENCH_COMMON_HH
#define SAP_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "engine/engine.hh"
#include "engine/registry.hh"

namespace sap {

/** Print a section header for one reproduced artifact. */
inline void
printHeader(const std::string &experiment_id, const std::string &title)
{
    std::printf("\n=== %s: %s ===\n", experiment_id.c_str(),
                title.c_str());
}

/** Print one measured engine run as a paper-style table row. */
inline void
printEngineRow(const std::string &engine, const EngineRunResult &r)
{
    std::printf("%-10s  A=%-5lld T=%-7lld macs=%-8lld e=%.4f\n",
                engine.c_str(), (long long)r.stats.peCount,
                (long long)r.stats.cycles,
                (long long)r.stats.usefulMacs, r.stats.utilization());
}

/** Instantiate a registered engine or die with a clear message. */
inline std::unique_ptr<SystolicEngine>
requireEngine(const std::string &name)
{
    auto engine = makeEngine(name);
    if (!engine)
        SAP_FATAL("engine '", name, "' is not registered");
    return engine;
}

/** Run @p plan once through the named engine. */
inline EngineRunResult
runOnEngine(const std::string &name, const EnginePlan &plan)
{
    return requireEngine(name)->run(plan);
}

/**
 * Time one (engine, plan) pair: the body every engine benchmark
 * shares. Reports raw edge-to-edge simulated cycles per wall-clock
 * second (totalCycles, matching the historic per-topology benches).
 *
 * Note this measures the *end-to-end* engine cost: each run()
 * rebuilds the DBT plan from the dense matrix before stepping the
 * array (plan caching is a ROADMAP item). For the simulator-only
 * hot-loop numbers, hoist a MatVecPlan/MatMulPlan out of the loop
 * as BM_LinearArrayCyclesPerSec / BM_HexArrayCyclesPerSec do.
 */
inline void
timeEngine(benchmark::State &state, const std::string &name,
           const EnginePlan &plan)
{
    auto engine = requireEngine(name);
    Cycle cycles = 0;
    for (auto _ : state) {
        EngineRunResult r = engine->run(plan);
        cycles += r.totalCycles;
        benchmark::DoNotOptimize(r);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

/**
 * Register one google-benchmark timer per registered engine of
 * @p kind, each running the plan produced by @p make_plan. Call
 * from main() before benchmark::Initialize (see SAP_BENCH_MAIN).
 *
 * @param label Benchmark family name, e.g. "engine_matvec".
 * @param make_plan Factory invoked once per engine registration.
 */
inline void
registerEngineSweep(const std::string &label, ProblemKind kind,
                    const std::function<EnginePlan()> &make_plan)
{
    for (const std::string &name : engineNames(kind)) {
        benchmark::RegisterBenchmark(
            (label + "/" + name).c_str(),
            [name, make_plan](benchmark::State &state) {
                timeEngine(state, name, make_plan());
            });
    }
}

//---------------------------------------------------------------------
// Machine-readable benchmark emission: BENCH_<name>.json files that
// the perf trajectory can be tracked from across PRs, next to the
// human-readable stdout tables.
//---------------------------------------------------------------------

/** One measured point: a name, its configuration, its metrics. */
struct BenchJsonEntry
{
    /** Measurement name, e.g. "amortization" or "shard_scaling". */
    std::string name;
    /** Configuration key/values (engine, shape, threads, ...). */
    std::vector<std::pair<std::string, std::string>> config;
    /** Metric key/values (req_per_s, speedup, cycles_per_s, ...). */
    std::vector<std::pair<std::string, double>> metrics;
};

/** Minimal JSON string escaping (quotes and backslashes). */
inline std::string
benchJsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * Write @p entries as BENCH_<bench>.json into $SAP_BENCH_JSON_DIR
 * (default: the working directory) and return the path written.
 */
inline std::string
writeBenchJson(const std::string &bench,
               const std::vector<BenchJsonEntry> &entries)
{
    const char *dir = std::getenv("SAP_BENCH_JSON_DIR");
    std::string path = (dir ? std::string(dir) + "/" : std::string()) +
                       "BENCH_" + bench + ".json";
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
        return path;
    }
    os << "{\n  \"bench\": \"" << benchJsonEscape(bench)
       << "\",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BenchJsonEntry &e = entries[i];
        os << "    {\"name\": \"" << benchJsonEscape(e.name)
           << "\", \"config\": {";
        for (std::size_t j = 0; j < e.config.size(); ++j)
            os << (j ? ", " : "") << "\""
               << benchJsonEscape(e.config[j].first) << "\": \""
               << benchJsonEscape(e.config[j].second) << "\"";
        os << "}, \"metrics\": {";
        char num[32];
        for (std::size_t j = 0; j < e.metrics.size(); ++j) {
            std::snprintf(num, sizeof(num), "%.6g",
                          e.metrics[j].second);
            os << (j ? ", " : "") << "\""
               << benchJsonEscape(e.metrics[j].first) << "\": " << num;
        }
        os << "}}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote %s (%zu entries)\n", path.c_str(),
                entries.size());
    return path;
}

/**
 * Standard main: emit the reproduction table(s), then run any
 * registered google-benchmark timers.
 */
#define SAP_BENCH_MAIN(print_fn)                                        \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        print_fn();                                                     \
        ::benchmark::Initialize(&argc, argv);                           \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        return 0;                                                       \
    }

/**
 * Main for benches that also register per-engine sweeps at runtime:
 * @p register_fn runs before benchmark::Initialize so registered
 * timers honor --benchmark_filter.
 */
#define SAP_BENCH_MAIN_WITH_REGISTRATION(print_fn, register_fn)         \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        print_fn();                                                     \
        register_fn();                                                  \
        ::benchmark::Initialize(&argc, argv);                           \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        return 0;                                                       \
    }

} // namespace sap

#endif // SAP_BENCH_BENCH_COMMON_HH
