/**
 * @file
 * Shared infrastructure for the reproduction benchmarks.
 *
 * Every bench binary regenerates one figure or analytic table of
 * the paper: it first prints the paper-style rows to stdout (so
 * running all binaries reproduces the evaluation) and then runs
 * google-benchmark timers over the simulator hot paths.
 */

#ifndef SAP_BENCH_BENCH_COMMON_HH
#define SAP_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace sap {

/** Print a section header for one reproduced artifact. */
inline void
printHeader(const std::string &experiment_id, const std::string &title)
{
    std::printf("\n=== %s: %s ===\n", experiment_id.c_str(),
                title.c_str());
}

/**
 * Standard main: emit the reproduction table(s), then run any
 * registered google-benchmark timers.
 */
#define SAP_BENCH_MAIN(print_fn)                                        \
    int main(int argc, char **argv)                                     \
    {                                                                   \
        print_fn();                                                     \
        ::benchmark::Initialize(&argc, argv);                           \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        return 0;                                                       \
    }

} // namespace sap

#endif // SAP_BENCH_BENCH_COMMON_HH
