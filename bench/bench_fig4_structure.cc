/**
 * @file
 * Figure 4 reproduction: block structure of the transformed
 * mat-mul problem for n̄=2, p̄=2, m̄=3 — the provenance sequences of
 * the Ā and B̄ bands (including the U'/L' tail blocks) and their
 * occupancy pictures.
 */

#include "bench/bench_common.hh"

#include "dbt/matmul_transform.hh"
#include "mat/generate.hh"
#include "mat/io.hh"

namespace sap {
namespace {

void
print()
{
    printHeader("F4", "block structure of the transformed "
                      "matrix-matrix problem (n̄=2, p̄=2, m̄=3)");

    const Index w = 3;
    Dense<Scalar> a = coordinateCoded(6, 6);
    Dense<Scalar> b = coordinateCoded(6, 9);
    MatMulTransform t(a, b, w);
    const MatMulDims &d = t.dims();

    std::printf("dims: n̄=%lld p̄=%lld m̄=%lld, K=%lld block rows, "
                "order N=%lld\n",
                (long long)d.nbar, (long long)d.pbar,
                (long long)d.mbar, (long long)d.blockCount(),
                (long long)d.order());

    std::printf("\nĀ band sequence (k: Ū=U^A_{r,s}, L̄=L^A_{r,s⊕1}):\n");
    for (Index k = 0; k < d.blockCount(); ++k) {
        std::printf("  k=%2lld: U%lld,%lld L%lld,%lld%s\n",
                    (long long)k, (long long)t.rOf(k),
                    (long long)t.sOf(k), (long long)t.rOf(k),
                    (long long)((t.sOf(k) + 1) % d.pbar),
                    k % (d.nbar * d.pbar) == 0 ? "   <- copy start"
                                               : "");
    }
    std::printf("  k=%2lld: U' (leading (w-1)x(w-1) of U^A_{0,0})\n",
                (long long)d.blockCount());

    std::printf("\nB̄ band sequence (k: L⁺=B-lower(s,c), "
                "U⁻=B-upper(s,c')):\n");
    for (Index k = 0; k < d.blockCount(); ++k) {
        std::printf("  k=%2lld: L+%lld,%lld", (long long)k,
                    (long long)t.sOf(k), (long long)t.cOf(k));
        if (k >= 1)
            std::printf("  U-%lld,%lld", (long long)(k % d.pbar),
                        (long long)((k - 1) / (d.nbar * d.pbar)));
        std::printf("\n");
    }
    std::printf("  k=%2lld: L' (leading (w-1)x(w-1) of L⁺_{0,0})\n",
                (long long)d.blockCount());

    std::printf("\nĀ occupancy:\n%s",
                occupancyPicture(t.abar()).c_str());
    std::printf("\nB̄ occupancy:\n%s",
                occupancyPicture(t.bbar()).c_str());
}

void
BM_MatMulTransformBuild(benchmark::State &state)
{
    Index s = state.range(0);
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    for (auto _ : state) {
        MatMulTransform t(a, b, 3);
        benchmark::DoNotOptimize(t.abar());
    }
}
BENCHMARK(BM_MatMulTransformBuild)->Arg(6)->Arg(12)->Arg(24);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
