/**
 * @file
 * Figures 1 and 2 reproduction: block structure of the mat-vec
 * transformation. Prints the (Ū_k, L̄_k) provenance sequence, the
 * occupancy picture of the transformed band, the transformed vector
 * layout, and the optimal two-subproblem cut (the dotted line of
 * Fig. 2.b) for the paper's worked case n=6, m=9, w=3.
 */

#include "bench/bench_common.hh"

#include "base/math_util.hh"
#include "dbt/matvec_transform.hh"
#include "mat/generate.hh"
#include "mat/io.hh"

namespace sap {
namespace {

void
printStructure(Index n, Index m, Index w)
{
    Dense<Scalar> a = coordinateCoded(n, m);
    MatVecTransform t(a, w);
    const MatVecDims &d = t.dims();

    std::printf("n=%lld m=%lld w=%lld -> n̄=%lld m̄=%lld, "
                "band %lldx%lld (bandwidth %lld)\n",
                (long long)n, (long long)m, (long long)w,
                (long long)d.nbar, (long long)d.mbar,
                (long long)d.barRows(), (long long)d.barCols(),
                (long long)w);

    std::printf("band block sequence (paper Fig. 2.b):\n  k :");
    for (Index k = 0; k < d.blockCount(); ++k)
        std::printf(" %4lld", (long long)k);
    std::printf("\n  Ū :");
    for (Index k = 0; k < d.blockCount(); ++k)
        std::printf(" U%lld,%lld", (long long)t.pair(k).uRow,
                    (long long)t.pair(k).uCol);
    std::printf("\n  L̄ :");
    for (Index k = 0; k < d.blockCount(); ++k)
        std::printf(" L%lld,%lld", (long long)t.pair(k).lRow,
                    (long long)t.pair(k).lCol);
    std::printf("\n  b̄ :");
    for (Index k = 0; k < d.blockCount(); ++k)
        std::printf(" %4s",
                    t.bSourceOf(k) == BSource::External ? "b" : "fb");
    std::printf("\n  ȳ :");
    for (Index k = 0; k < d.blockCount(); ++k)
        std::printf(" %4s", t.ySinkOf(k) == YSink::Emit ? "y" : "rec");
    std::printf("\n");

    if (d.nbar >= 2) {
        Index cut = ceilDiv(d.nbar, 2) * d.mbar;
        std::printf("optimal 2-subproblem cut (dotted line): after "
                    "band block row %lld\n", (long long)(cut - 1));
    }

    std::printf("band occupancy ('#' = data, '.' = empty):\n%s",
                occupancyPicture(t.abar()).c_str());
    std::printf("band completely filled: %s\n",
                t.abar().bandCompletelyFilled() ? "yes" : "no");
}

void
print()
{
    printHeader("F1/F2", "block structure of the transformed "
                         "matrix-vector problem");
    printStructure(6, 9, 3); // the paper's worked example
    std::printf("\ngeneric non-multiple case:\n");
    printStructure(5, 7, 3);
}

void
BM_TransformBuild(benchmark::State &state)
{
    Index n = state.range(0);
    Dense<Scalar> a = randomIntDense(n, n, 1);
    for (auto _ : state) {
        MatVecTransform t(a, 4);
        benchmark::DoNotOptimize(t.abar());
    }
}
BENCHMARK(BM_TransformBuild)->Arg(16)->Arg(64)->Arg(256);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
