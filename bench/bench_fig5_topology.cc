/**
 * @file
 * Figure 5 reproduction: the spiral feedback topology of the
 * hexagonal array. Prints, per array size, every feedback loop
 * (main diagonal self-loop, paired sub/super diagonals), its PE
 * count (always w), and its measured register requirements; also
 * audits that a real execution never routes feedback outside a
 * loop.
 */

#include "bench/bench_common.hh"

#include "analysis/formulas.hh"
#include "base/table.hh"
#include "dbt/matmul_plan.hh"
#include "mat/generate.hh"
#include "sim/spiral_feedback.hh"

namespace sap {
namespace {

void
print()
{
    printHeader("F5", "spiral feedback topology of the hexagonal "
                      "array");

    for (Index w : {2, 3, 4, 5}) {
        std::printf("\nw = %lld:\n", (long long)w);
        Dense<Scalar> a = randomIntDense(2 * w, 2 * w, 60 + w);
        Dense<Scalar> b = randomIntDense(2 * w, 2 * w, 61 + w);
        MatMulPlan plan(a, b, w);
        MatMulPlanResult r = plan.run(Dense<Scalar>(2 * w, 2 * w));
        const SpiralFeedback &fb = *r.feedback;

        Table t({"loop", "diagonals", "PEs in loop", "peak regular "
                 "registers", "paper registers"});
        for (Index loop = 0; loop < w; ++loop) {
            std::string diags =
                loop == 0 ? "{0}"
                          : "{" + std::to_string(loop) + ", " +
                                std::to_string(loop - w) + "}";
            Index paper_regs = loop == 0
                                   ? formulas::hexMemMainDiag(w)
                                   : formulas::hexMemSubDiag(w);
            t.addRow({std::to_string(loop), diags,
                      std::to_string(fb.loopPeCount(loop)),
                      std::to_string(fb.peakRegularOccupancy(loop)),
                      std::to_string(paper_regs)});
        }
        std::printf("%s", t.render().c_str());
        std::printf("topology respected by all %lld transfers: %s\n",
                    (long long)fb.transferCount(),
                    fb.topologyRespected() ? "yes" : "NO");
    }
    std::printf("\npaper claim: every loop passes through exactly w "
                "PEs; pairing is delta <-> delta - w.\n");
}

void
BM_SpiralAudit(benchmark::State &state)
{
    Index w = state.range(0);
    Dense<Scalar> a = randomIntDense(2 * w, 2 * w, 1);
    Dense<Scalar> b = randomIntDense(2 * w, 2 * w, 2);
    MatMulPlan plan(a, b, w);
    Dense<Scalar> e(2 * w, 2 * w);
    for (auto _ : state) {
        MatMulPlanResult r = plan.run(e);
        benchmark::DoNotOptimize(r.c);
    }
}
BENCHMARK(BM_SpiralAudit)->Arg(2)->Arg(4);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
