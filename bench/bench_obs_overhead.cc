/**
 * @file
 * PERF: cost of the obs/ instrumentation on the serving hot path
 * (engineering data, not a paper artifact).
 *
 * The observability contract is that measurement must not distort
 * what it measures. Three configurations of the same end-to-end
 * loopback workload quantify it:
 *
 *  - baseline:   metrics off, tracing off — the pre-observability
 *                hot path (every instrument pointer is null, every
 *                trace handle is null).
 *  - metrics_on: metrics registries live, tracing off — the default
 *                serving configuration. Budget: <= 1% slower than
 *                baseline.
 *  - sampled:    metrics on plus request tracing at 1-in-64
 *                sampling — the recommended production-debug
 *                configuration. Budget: <= 3% slower than baseline.
 *  - admin:      metrics on plus the admin HTTP plane and the
 *                flight-recorder sampler ticking at 250 ms — the
 *                scrapeable production configuration. Budget: <= 1%
 *                slower than baseline (the sampler runs off the hot
 *                path and touches the registries only briefly).
 *
 * The workload is pipelined linear mat-vec over TCP loopback with a
 * warm plan cache, so the per-request cost is dominated by the
 * cycle-level simulation the instruments wrap — exactly the regime
 * the budgets are stated for. Each configuration is measured
 * several times and the best wall time is kept (the usual defense
 * against scheduler noise on shared CI hosts).
 *
 * The print section emits BENCH_obs_overhead.json with the measured
 * overheads next to their budgets; google-benchmark timers cover
 * the per-operation costs (histogram record, counter add, trace
 * begin/stamp/finish) for tracked history.
 */

#include "bench/bench_common.hh"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "mat/generate.hh"
#include "net/client.hh"
#include "net/gateway.hh"
#include "net/server.hh"
#include "obs/metrics.hh"
#include "obs/trace_ring.hh"

namespace sap {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct ObsConfig
{
    const char *name;
    bool metrics;
    bool trace;
    std::uint64_t sampleEvery;
    /** Admin HTTP plane + flight-recorder sampler enabled. */
    bool admin;
    /** Acceptance budget vs baseline, in percent (0 = is baseline). */
    double budgetPct;
};

/**
 * One measured run: a fresh server in @p cfg's configuration,
 * @p clients threads pipelining batches of the same warm-cache
 * mat-vec. Returns requests per second (best of @p repeats).
 */
double
measure(const ObsConfig &cfg, int clients, int rounds, int batch,
        Index s, Index w, int repeats)
{
    double best_wall = 0;
    for (int rep = 0; rep < repeats; ++rep) {
        NetServer::Options opts;
        opts.cluster.shards = 2;
        opts.cluster.threadsPerShard = 2;
        opts.cluster.metrics = cfg.metrics;
        opts.metrics = cfg.metrics;
        opts.trace.enabled = cfg.trace;
        opts.trace.sampleEvery = cfg.sampleEvery;
        opts.adminEnabled = cfg.admin;
        // Fast enough that the sampler provably ticks (and contends
        // for the registry mutexes) during the timed region.
        opts.samplerIntervalSeconds = 0.25;
        NetServer server(opts);
        SAP_ASSERT(server.start(), "obs bench server failed to start");

        // One matrix per client: after the warm-up round every
        // request is a plan-cache hit, so the timed region is
        // routing + queueing + simulation, not dense->band rebuilds.
        Dense<Scalar> a = randomIntDense(s, s, 42);
        auto makeBatch = [&](int c, int r) {
            std::vector<ServeRequest> reqs;
            for (int i = 0; i < batch; ++i) {
                ServeRequest req;
                req.engine = "linear";
                req.plan = EnginePlan::matVec(
                    a,
                    randomIntVec(s, static_cast<std::uint64_t>(
                                        100 * c + 10 * r + i)),
                    randomIntVec(s, static_cast<std::uint64_t>(
                                        7000 + 100 * c + 10 * r + i)),
                    w);
                reqs.push_back(std::move(req));
            }
            return reqs;
        };

        // Warm-up: land the plan in every shard's cache.
        {
            NetClient warm;
            SAP_ASSERT(warm.connect("127.0.0.1", server.port()),
                       "obs bench warm-up connect failed");
            for (const NetClient::Result &r :
                 warm.submitBatch(makeBatch(99, 99)))
                SAP_ASSERT(r.transportOk && r.response.ok,
                           "obs bench warm-up request failed");
        }

        auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                NetClient client;
                SAP_ASSERT(client.connect("127.0.0.1", server.port()),
                           "obs bench connect failed");
                for (int r = 0; r < rounds; ++r)
                    for (const NetClient::Result &res :
                         client.submitBatch(makeBatch(c, r)))
                        SAP_ASSERT(res.transportOk && res.response.ok,
                                   "obs bench request failed");
            });
        }
        for (std::thread &t : threads)
            t.join();
        double wall = secondsSince(t0);
        if (rep == 0 || wall < best_wall)
            best_wall = wall;
    }
    return static_cast<double>(clients) * rounds * batch / best_wall;
}

/**
 * The cross-tier run: the same warm-cache workload through a gateway
 * over two backends, with or without sampled edge tracing. When
 * @p tracing is on the gateway head-samples at 1-in-64 and the
 * backends commit only what the propagated flag tells them to — the
 * recommended production-debug configuration for the tier. Returns
 * requests per second (best of @p repeats).
 */
double
measureGateway(bool tracing, int clients, int rounds, int batch,
               Index s, Index w, int repeats)
{
    double best_wall = 0;
    for (int rep = 0; rep < repeats; ++rep) {
        std::vector<std::unique_ptr<NetServer>> backends;
        std::vector<Gateway::BackendAddr> addrs;
        for (int b = 0; b < 2; ++b) {
            NetServer::Options opts;
            opts.cluster.shards = 2;
            opts.cluster.threadsPerShard = 2;
            opts.trace.enabled = tracing;
            opts.trace.sampleEvery = 0; // commits ride the flag
            backends.push_back(std::make_unique<NetServer>(opts));
            SAP_ASSERT(backends.back()->start(),
                       "obs bench backend failed to start");
            addrs.push_back({"127.0.0.1", backends.back()->port(), 0});
        }
        Gateway::Options gopts;
        gopts.backends = std::move(addrs);
        gopts.trace.enabled = tracing;
        gopts.trace.sampleEvery = 64;
        Gateway gw(gopts);
        SAP_ASSERT(gw.start(), "obs bench gateway failed to start");
        while (gw.routableBackends() < 2)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));

        Dense<Scalar> a = randomIntDense(s, s, 42);
        auto makeBatch = [&](int c, int r) {
            std::vector<ServeRequest> reqs;
            for (int i = 0; i < batch; ++i) {
                ServeRequest req;
                req.engine = "linear";
                req.plan = EnginePlan::matVec(
                    a,
                    randomIntVec(s, static_cast<std::uint64_t>(
                                        100 * c + 10 * r + i)),
                    randomIntVec(s, static_cast<std::uint64_t>(
                                        7000 + 100 * c + 10 * r + i)),
                    w);
                reqs.push_back(std::move(req));
            }
            return reqs;
        };

        {
            NetClient warm;
            SAP_ASSERT(warm.connect("127.0.0.1", gw.port()),
                       "obs bench gateway warm-up connect failed");
            for (const NetClient::Result &r :
                 warm.submitBatch(makeBatch(99, 99)))
                SAP_ASSERT(r.transportOk && r.response.ok,
                           "obs bench gateway warm-up request failed");
        }

        auto t0 = std::chrono::steady_clock::now();
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                NetClient client;
                SAP_ASSERT(client.connect("127.0.0.1", gw.port()),
                           "obs bench gateway connect failed");
                for (int r = 0; r < rounds; ++r)
                    for (const NetClient::Result &res :
                         client.submitBatch(makeBatch(c, r)))
                        SAP_ASSERT(res.transportOk && res.response.ok,
                                   "obs bench gateway request failed");
            });
        }
        for (std::thread &t : threads)
            t.join();
        double wall = secondsSince(t0);
        gw.stop();
        for (std::unique_ptr<NetServer> &b : backends)
            b->stop();
        if (rep == 0 || wall < best_wall)
            best_wall = wall;
    }
    return static_cast<double>(clients) * rounds * batch / best_wall;
}

void
print()
{
    const bool tiny = std::getenv("SAP_BENCH_TINY") != nullptr;
    const int kClients = 2;
    const int kRounds = tiny ? 4 : 24;
    const int kBatch = 8;
    const Index s = tiny ? 48 : 128;
    const Index w = 8;
    const int kRepeats = tiny ? 1 : 3;

    const ObsConfig configs[] = {
        {"baseline", false, false, 0, false, 0.0},
        {"metrics_on", true, false, 0, false, 1.0},
        {"sampled", true, true, 64, false, 3.0},
        // The full admin plane: metrics + flight-recorder sampler +
        // HTTP server thread idling on its port. The sampler snapshots
        // the whole registry every 250 ms; its cost must stay inside
        // the metrics budget because it contends only briefly.
        {"admin", true, false, 0, true, 1.0},
    };

    printHeader("OBS-1",
                "observability overhead: end-to-end loopback serving "
                "(warm cache, linear mat-vec)");
    std::printf("workload: %d clients x %d rounds x %d-deep batches, "
                "%lldx%lld w=%lld, best of %d\n",
                kClients, kRounds, kBatch, (long long)s, (long long)s,
                (long long)w, kRepeats);
    std::printf("%-12s %10s %10s %10s\n", "config", "req/s",
                "overhead", "budget");

    std::vector<BenchJsonEntry> json;
    double base_rps = 0;
    for (const ObsConfig &cfg : configs) {
        double rps = measure(cfg, kClients, kRounds, kBatch, s, w,
                             kRepeats);
        if (cfg.budgetPct == 0.0)
            base_rps = rps;
        double overhead_pct = (base_rps / rps - 1.0) * 100.0;
        char budget[24] = "-";
        if (cfg.budgetPct > 0)
            std::snprintf(budget, sizeof(budget), "<=%.0f%% %s",
                          cfg.budgetPct,
                          overhead_pct <= cfg.budgetPct ? "ok"
                                                        : "OVER");
        std::printf("%-12s %10.0f %9.2f%% %10s\n", cfg.name, rps,
                    overhead_pct, budget);
        json.push_back(
            {"obs_overhead",
             {{"config", cfg.name},
              {"engine", "linear"},
              {"s", std::to_string(s)},
              {"w", std::to_string(w)},
              {"clients", std::to_string(kClients)},
              {"sample_every", std::to_string(cfg.sampleEvery)},
              {"admin", cfg.admin ? "on" : "off"}},
             {{"req_per_s", rps},
              {"overhead_pct", overhead_pct},
              {"budget_pct", cfg.budgetPct}}});
    }

    // The cross-tier pair: gateway + 2 backends, tracing off as its
    // own baseline vs 1-in-64 edge-sampled tracing with propagation.
    // The budget mirrors the single-tier sampled one: the context
    // block on the wire plus the gateway's own stamps must stay
    // inside 3%.
    std::printf("\ncross-tier: gateway over 2 backends\n");
    std::printf("%-16s %10s %10s %10s\n", "config", "req/s",
                "overhead", "budget");
    double gw_base_rps = 0;
    struct
    {
        const char *name;
        bool tracing;
        double budgetPct;
    } gwConfigs[] = {
        {"gateway_baseline", false, 0.0},
        {"gateway-tracing", true, 3.0},
    };
    for (const auto &cfg : gwConfigs) {
        double rps = measureGateway(cfg.tracing, kClients, kRounds,
                                    kBatch, s, w, kRepeats);
        if (cfg.budgetPct == 0.0)
            gw_base_rps = rps;
        double overhead_pct = (gw_base_rps / rps - 1.0) * 100.0;
        char budget[24] = "-";
        if (cfg.budgetPct > 0)
            std::snprintf(budget, sizeof(budget), "<=%.0f%% %s",
                          cfg.budgetPct,
                          overhead_pct <= cfg.budgetPct ? "ok"
                                                        : "OVER");
        std::printf("%-16s %10.0f %9.2f%% %10s\n", cfg.name, rps,
                    overhead_pct, budget);
        json.push_back(
            {"obs_overhead",
             {{"config", cfg.name},
              {"engine", "linear"},
              {"s", std::to_string(s)},
              {"w", std::to_string(w)},
              {"clients", std::to_string(kClients)},
              {"sample_every", cfg.tracing ? "64" : "0"},
              {"admin", "off"}},
             {{"req_per_s", rps},
              {"overhead_pct", overhead_pct},
              {"budget_pct", cfg.budgetPct}}});
    }
    writeBenchJson("obs_overhead", json);
}

//---------------------------------------------------------------------
// Tracked google-benchmark timers: per-operation instrument costs.
//---------------------------------------------------------------------

void
BM_HistogramRecord(benchmark::State &state)
{
    Histogram h;
    double v = 0.5;
    for (auto _ : state) {
        h.record(v);
        v = v < 1e6 ? v * 1.01 : 0.5;
    }
    benchmark::DoNotOptimize(h.snapshot().count);
}
BENCHMARK(BM_HistogramRecord);

void
BM_CounterAdd(benchmark::State &state)
{
    Counter c;
    for (auto _ : state)
        c.add();
    benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

/** Full trace lifecycle at 1-in-64 sampling: what one request pays
 *  when tracing is enabled. */
void
BM_TraceBeginStampFinish(benchmark::State &state)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.sampleEvery = 64;
    TraceCollector collector(cfg, nullptr);
    for (auto _ : state) {
        std::shared_ptr<RequestTrace> t = collector.begin();
        traceStamp(t, TraceStage::Decode);
        traceStamp(t, TraceStage::Route);
        traceStamp(t, TraceStage::Dequeue);
        traceStamp(t, TraceStage::Execute);
        traceStamp(t, TraceStage::Flush);
        collector.finish(t);
    }
    benchmark::DoNotOptimize(collector.totalCommitted());
}
BENCHMARK(BM_TraceBeginStampFinish);

/** The disabled path: what every request pays when tracing is off
 *  (null handle, all stamps no-ops). */
void
BM_TraceDisabled(benchmark::State &state)
{
    TraceCollector collector(TraceConfig{}, nullptr);
    for (auto _ : state) {
        std::shared_ptr<RequestTrace> t = collector.begin();
        traceStamp(t, TraceStage::Decode);
        traceStamp(t, TraceStage::Execute);
        collector.finish(t);
    }
    benchmark::DoNotOptimize(collector.totalCommitted());
}
BENCHMARK(BM_TraceDisabled);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
