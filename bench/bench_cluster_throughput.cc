/**
 * @file
 * PERF: throughput of the sharded cluster layer (engineering data,
 * not a paper artifact).
 *
 * Two claims are measured:
 *
 *  1. Shard scaling: consistent-hash routing pins each matrix to one
 *     shard, so aggregate plan-cache capacity grows with the shard
 *     count and each shard's cache holds only its own partition of
 *     the key space. A repeated-matrix workload whose distinct-
 *     matrix count exceeds one shard's cache capacity therefore
 *     thrashes a 1-shard installation (every request pays the full
 *     dense→band rebuild) but runs nearly all-hits on 4 shards —
 *     cache economics, which hold even on a single-core host where
 *     thread parallelism cannot.
 *
 *  2. Batch grouping: submitBatch() serves same-matrix requests
 *     through one prepared-plan streaming pass, beating a loop of
 *     individual submits on a cold cache.
 *
 * The print section reports both and emits BENCH_cluster_throughput
 * .json; google-benchmark timers cover the submit path for tracked
 * history.
 */

#include "bench/bench_common.hh"

#include <chrono>
#include <thread>

#include "cluster/cluster.hh"
#include "mat/generate.hh"

namespace sap {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The shard-scaling workload: K distinct (A, B) mat-mul pairs. */
struct HexWorkload
{
    Index s = 12;
    Index w = 2;
    std::vector<Dense<Scalar>> as;
    std::vector<Dense<Scalar>> bs;
};

HexWorkload
makeHexWorkload(int matrices)
{
    HexWorkload wl;
    for (int k = 0; k < matrices; ++k) {
        wl.as.push_back(randomIntDense(wl.s, wl.s, 1000 + 2 * k));
        wl.bs.push_back(randomIntDense(wl.s, wl.s, 1001 + 2 * k));
    }
    return wl;
}

ServeRequest
hexRequest(const HexWorkload &wl, int matrix, std::uint64_t seed,
           ExecMode mode = ExecMode::Simulate)
{
    ServeRequest req;
    req.engine = "hex";
    req.plan = EnginePlan::matMul(
        wl.as[matrix], wl.bs[matrix],
        randomIntDense(wl.s, wl.s, seed), wl.w);
    req.plan.mode = mode;
    return req;
}

/**
 * Fire @p clients threads, each cycling the workload's matrices for
 * @p requests_per_client requests against @p cluster. Returns wall
 * seconds once every future resolved.
 */
double
hammer(Cluster &cluster, const HexWorkload &wl, int clients,
       int requests_per_client, ExecMode mode = ExecMode::Simulate)
{
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::vector<std::future<ServeResponse>> futures;
            const int matrices = static_cast<int>(wl.as.size());
            for (int i = 0; i < requests_per_client; ++i) {
                // Every client cycles all matrices (phase-shifted):
                // the cyclic access pattern LRU caches hate.
                int m = (c + i) % matrices;
                futures.push_back(cluster.submit(hexRequest(
                    wl, m,
                    static_cast<std::uint64_t>(5000 + 100 * c + i),
                    mode)));
            }
            for (auto &f : futures)
                SAP_ASSERT(f.get().ok, "cluster bench request failed");
        });
    }
    for (std::thread &t : threads)
        t.join();
    return secondsSince(t0);
}

/**
 * The headline table: 1/2/4 shards against the same repeated-matrix
 * stream from 8 client threads. Per-shard cache capacity (12) is
 * below the distinct-matrix count (16), so one shard thrashes while
 * four hold their partitions.
 */
void
printShardScaling(std::vector<BenchJsonEntry> *json)
{
    const int kClients = 8;
    const int kMatrices = 16;
    const int kRequestsPerClient = 32;
    const std::size_t kCachePerShard = 12;

    printHeader("CLUSTER-1",
                "shard scaling: 16 repeated matrices, 8 client "
                "threads, plan-cache capacity 12/shard");
    std::printf("(distinct matrices exceed one shard's cache: 1 "
                "shard rebuilds per request, 4 shards serve from "
                "cache)\n");
    std::printf("%-8s %10s %12s %10s %10s %9s\n", "shardsxw",
                "requests", "wall", "req/s", "hit rate", "speedup");

    HexWorkload wl = makeHexWorkload(kMatrices);
    double base_req_per_s = 0;
    double equal_workers_req_per_s = 0;
    double speedup_4v1 = 0;

    // The last configuration is the equal-total-workers control:
    // 1 shard with all 8 workers has the same thread parallelism as
    // 4x2 but one shard's cache, so the 4x2-vs-1x8 ratio isolates
    // the cache-partitioning effect from plain worker scaling on
    // multi-core hosts.
    struct Config
    {
        std::size_t shards;
        std::size_t threads_per_shard;
    };
    for (const Config &c : {Config{1, 2}, Config{2, 2}, Config{4, 2},
                            Config{1, 8}}) {
        Cluster::Options opts;
        opts.shards = c.shards;
        opts.threadsPerShard = c.threads_per_shard;
        opts.planCacheCapacityPerShard = kCachePerShard;
        Cluster cluster(opts);

        double wall =
            hammer(cluster, wl, kClients, kRequestsPerClient);
        ClusterStats stats = cluster.stats();
        double total =
            static_cast<double>(kClients * kRequestsPerClient);
        double req_per_s = total / wall;
        if (c.shards == 1 && c.threads_per_shard == 2)
            base_req_per_s = req_per_s;
        if (c.shards == 1 && c.threads_per_shard == 8)
            equal_workers_req_per_s = req_per_s;
        double speedup = req_per_s / base_req_per_s;
        if (c.shards == 4)
            speedup_4v1 = speedup;
        char label[16];
        std::snprintf(label, sizeof(label), "%zux%zu", c.shards,
                      c.threads_per_shard);
        std::printf("%-8s %10.0f %10.2fms %10.0f %9.0f%% %8.2fx\n",
                    label, total, wall * 1e3, req_per_s,
                    stats.planCache.hitRate() * 100.0, speedup);
        json->push_back(
            {"shard_scaling",
             {{"shards", std::to_string(c.shards)},
              {"threads_per_shard",
               std::to_string(c.threads_per_shard)},
              {"clients", std::to_string(kClients)},
              {"matrices", std::to_string(kMatrices)},
              {"cache_per_shard", std::to_string(kCachePerShard)},
              {"engine", "hex"}},
             {{"req_per_s", req_per_s},
              {"hit_rate", stats.planCache.hitRate()},
              {"speedup_vs_1x2", speedup}}});
    }
    std::printf("4 shards vs 1 shard: %.2fx\n", speedup_4v1);
    std::printf("4x2 shards vs 1x8 equal-workers control: %.2fx "
                "(cache partitioning alone)\n",
                speedup_4v1 * base_req_per_s /
                    equal_workers_req_per_s);
}

/**
 * Fast vs simulate through the full cluster path: the same matrix
 * stream against a warm plan cache, so routing, caching, and thread
 * hand-off cost is identical and the delta is purely the execution
 * path — cycle-level stepping vs the bit-identical semantics replay.
 */
void
printModeAxis(std::vector<BenchJsonEntry> *json)
{
    const int kClients = 4;
    const int kMatrices = 16;
    const int kRequestsPerClient = 32;

    printHeader("CLUSTER-3",
                "execution mode: fast semantics replay vs cycle "
                "simulation through the cluster (warm cache)");
    std::printf("%-10s %12s %10s %9s\n", "mode", "wall", "req/s",
                "hit rate");

    HexWorkload wl = makeHexWorkload(kMatrices);
    double wall_by_mode[2] = {0, 0};
    for (int m = 0; m < 2; ++m) {
        ExecMode mode = m == 0 ? ExecMode::Simulate : ExecMode::Fast;
        Cluster::Options opts;
        opts.shards = 2;
        opts.threadsPerShard = 2;
        opts.planCacheCapacityPerShard = kMatrices;
        Cluster cluster(opts);

        // Warm pass: land every matrix's plan in its shard's cache
        // so the timed pass isolates the execution path.
        {
            std::vector<std::future<ServeResponse>> warm;
            for (int k = 0; k < kMatrices; ++k)
                warm.push_back(cluster.submit(hexRequest(
                    wl, k, static_cast<std::uint64_t>(4000 + k),
                    mode)));
            for (auto &f : warm)
                SAP_ASSERT(f.get().ok, "cluster warm-up failed");
        }

        double wall =
            hammer(cluster, wl, kClients, kRequestsPerClient, mode);
        wall_by_mode[m] = wall;
        ClusterStats stats = cluster.stats();
        double total =
            static_cast<double>(kClients * kRequestsPerClient);
        double req_per_s = total / wall;
        std::printf("%-10s %10.2fms %10.0f %8.0f%%\n",
                    execModeName(mode).c_str(), wall * 1e3, req_per_s,
                    stats.planCache.hitRate() * 100.0);
        json->push_back({"mode_axis",
                         {{"mode", execModeName(mode)},
                          {"engine", "hex"},
                          {"clients", std::to_string(kClients)},
                          {"matrices", std::to_string(kMatrices)}},
                         {{"req_per_s", req_per_s},
                          {"hit_rate", stats.planCache.hitRate()}}});
    }
    std::printf("fast vs simulate: %.2fx\n",
                wall_by_mode[0] / wall_by_mode[1]);
}

/** submitBatch() grouping vs a loop of individual submits. */
void
printBatchGrouping(std::vector<BenchJsonEntry> *json)
{
    const Index s = 24, w = 4;
    const int kRequests = 48;

    printHeader("CLUSTER-2", "server-side batch grouping: one "
                             "matrix, one prepared streaming pass");
    std::printf("%-12s %12s %10s\n", "mode", "wall", "req/s");

    Dense<Scalar> a = randomIntDense(s, s, 7001);
    auto makeRequests = [&] {
        std::vector<ServeRequest> reqs;
        for (int i = 0; i < kRequests; ++i) {
            ServeRequest req;
            req.engine = "linear";
            req.plan = EnginePlan::matVec(
                a, randomIntVec(s, 7100 + 2 * i),
                randomIntVec(s, 7101 + 2 * i), w);
            reqs.push_back(std::move(req));
        }
        return reqs;
    };

    double wall_by_mode[2] = {0, 0};
    const char *modes[2] = {"individual", "batched"};
    for (int mode = 0; mode < 2; ++mode) {
        Cluster::Options opts;
        opts.shards = 2;
        opts.threadsPerShard = 2;
        // Cold cache each run: capacity 0 disables caching, so the
        // individual path pays a rebuild per request while the
        // batched path still shares its one group-prepared plan.
        opts.planCacheCapacityPerShard = 0;
        Cluster cluster(opts);

        std::vector<ServeRequest> reqs = makeRequests();
        auto t0 = std::chrono::steady_clock::now();
        std::vector<std::future<ServeResponse>> futures;
        if (mode == 0) {
            for (ServeRequest &req : reqs)
                futures.push_back(cluster.submit(std::move(req)));
        } else {
            futures = cluster.submitBatch(std::move(reqs));
        }
        std::size_t ok = 0;
        for (auto &f : futures)
            ok += f.get().ok ? 1 : 0;
        double wall = secondsSince(t0);
        SAP_ASSERT(ok == static_cast<std::size_t>(kRequests),
                   "cluster batch bench failures");
        wall_by_mode[mode] = wall;
        double req_per_s = kRequests / wall;
        std::printf("%-12s %10.2fms %10.0f\n", modes[mode],
                    wall * 1e3, req_per_s);
        json->push_back({"batch_grouping",
                         {{"mode", modes[mode]},
                          {"engine", "linear"},
                          {"s", std::to_string(s)},
                          {"requests", std::to_string(kRequests)}},
                         {{"wall_ms", wall * 1e3},
                          {"req_per_s", req_per_s}}});
    }
    std::printf("batched vs individual: %.2fx\n",
                wall_by_mode[0] / wall_by_mode[1]);
}

void
print()
{
    std::vector<BenchJsonEntry> json;
    printShardScaling(&json);
    printModeAxis(&json);
    printBatchGrouping(&json);
    writeBenchJson("cluster_throughput", json);
}

//---------------------------------------------------------------------
// Tracked google-benchmark timers.
//---------------------------------------------------------------------

void
BM_ClusterSubmitRepeatedMatrices(benchmark::State &state)
{
    const std::size_t shards =
        static_cast<std::size_t>(state.range(0));
    const int kMatrices = 16;
    HexWorkload wl = makeHexWorkload(kMatrices);

    Cluster::Options opts;
    opts.shards = shards;
    opts.threadsPerShard = 2;
    opts.planCacheCapacityPerShard = 12;
    Cluster cluster(opts);

    std::size_t served = 0;
    int i = 0;
    for (auto _ : state) {
        std::vector<std::future<ServeResponse>> futures;
        for (int m = 0; m < kMatrices; ++m)
            futures.push_back(cluster.submit(hexRequest(
                wl, (i + m) % kMatrices,
                static_cast<std::uint64_t>(9000 + i + m))));
        for (auto &f : futures)
            served += f.get().ok ? 1 : 0;
        ++i;
    }
    state.counters["req/s"] = benchmark::Counter(
        static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterSubmitRepeatedMatrices)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ClusterBatchSubmit(benchmark::State &state)
{
    const Index s = 16, w = 4;
    Dense<Scalar> a = randomIntDense(s, s, 11001);
    Cluster::Options opts;
    opts.shards = 2;
    opts.threadsPerShard = 2;
    Cluster cluster(opts);

    std::size_t served = 0;
    for (auto _ : state) {
        std::vector<ServeRequest> reqs;
        for (int i = 0; i < 8; ++i) {
            ServeRequest req;
            req.engine = "linear";
            req.plan = EnginePlan::matVec(
                a, randomIntVec(s, 11100 + i),
                randomIntVec(s, 11200 + i), w);
            reqs.push_back(std::move(req));
        }
        for (auto &f : cluster.submitBatch(std::move(reqs)))
            served += f.get().ok ? 1 : 0;
    }
    state.counters["req/s"] = benchmark::Counter(
        static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterBatchSubmit)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
