/**
 * @file
 * §3 analytic results reproduction (T-MM and E-MM): measured hex
 * array step counts and utilizations vs. the paper's formulas over
 * a (w, n̄, p̄, m̄) sweep, fanned out over the shared sweep runner
 * (analysis/sweep.hh runConfigSweep) — each row is a pure function
 * of its config, so the parallel table matches a serial run.
 */

#include "bench/bench_common.hh"

#include "analysis/formulas.hh"
#include "analysis/sweep.hh"
#include "base/string_util.hh"
#include "base/table.hh"
#include "dbt/matmul_plan.hh"
#include "mat/generate.hh"

namespace sap {
namespace {

/** One rendered table row; computed per config on the sweep pool. */
std::vector<std::string>
measurePoint(const MatMulConfig &cfg)
{
    Dense<Scalar> a = randomIntDense(cfg.n, cfg.p, 7 + cfg.n + cfg.p);
    Dense<Scalar> b = randomIntDense(cfg.p, cfg.m, 8 + cfg.p + cfg.m);
    MatMulPlan plan(a, b, cfg.w);
    const MatMulDims &d = plan.dims();
    MatMulPlanResult r = plan.run(Dense<Scalar>(cfg.n, cfg.m));

    return {std::to_string(d.w), std::to_string(d.nbar),
            std::to_string(d.pbar), std::to_string(d.mbar),
            std::to_string(r.stats.cycles),
            std::to_string(formulas::tMatMul(d.w, d.pbar, d.nbar,
                                             d.mbar)),
            formatReal(r.stats.utilization(), 4),
            formatReal(formulas::eMatMul(d.w, d.pbar, d.nbar, d.mbar),
                       4)};
}

void
print()
{
    printHeader("T-MM / E-MM",
                "mat-mul steps and utilization vs. paper formulas");

    Table t({"w", "n̄", "p̄", "m̄", "T sim", "T paper", "e sim",
             "e paper"});
    for (std::vector<std::string> &row :
         runConfigSweep(standardMatMulSweep(), defaultSweepThreads(),
                        measurePoint))
        t.addRow(std::move(row));
    std::printf("%s", t.render().c_str());
    std::printf("T matches the paper exactly; measured e differs "
                "from the formula only by the boundary-MAC deficit "
                "of the padded band edges (both -> 1/3 as p̄n̄m̄ "
                "grows).\n");
}

void
BM_MatMulPlanRun(benchmark::State &state)
{
    Index s = state.range(0);
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    Dense<Scalar> e(s, s);
    MatMulPlan plan(a, b, 3);
    for (auto _ : state) {
        MatMulPlanResult r = plan.run(e);
        benchmark::DoNotOptimize(r.c);
    }
    state.SetComplexityN(s);
}
BENCHMARK(BM_MatMulPlanRun)->Arg(6)->Arg(12)->Arg(24)
    ->Complexity(benchmark::oNCubed);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
