/**
 * @file
 * PERF: wall-clock throughput of the simulators themselves (not a
 * paper artifact — engineering data for users of the library):
 * simulated cycles per second of the linear and hexagonal arrays,
 * and scaling of the end-to-end plans.
 */

#include "bench/bench_common.hh"

#include "dbt/matvec_plan.hh"
#include "dbt/matmul_plan.hh"
#include "mat/generate.hh"

namespace sap {
namespace {

void
print()
{
    printHeader("PERF", "simulator wall-clock throughput "
                        "(google-benchmark timings follow)");
}

void
BM_LinearArrayCyclesPerSec(benchmark::State &state)
{
    Index w = state.range(0);
    Index s = 8 * w;
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Vec<Scalar> x = randomIntVec(s, 2);
    Vec<Scalar> b = randomIntVec(s, 3);
    MatVecPlan plan(a, w);
    Cycle cycles = 0;
    for (auto _ : state) {
        MatVecPlanResult r = plan.run(x, b);
        cycles += r.stats.cycles;
        benchmark::DoNotOptimize(r.y);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinearArrayCyclesPerSec)->Arg(4)->Arg(8)->Arg(16);

void
BM_HexArrayCyclesPerSec(benchmark::State &state)
{
    Index w = state.range(0);
    Index s = 3 * w;
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    Dense<Scalar> e(s, s);
    MatMulPlan plan(a, b, w);
    Cycle cycles = 0;
    for (auto _ : state) {
        MatMulPlanResult r = plan.run(e);
        cycles += r.totalCycles;
        benchmark::DoNotOptimize(r.c);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HexArrayCyclesPerSec)->Arg(2)->Arg(3)->Arg(4);

void
BM_BlockOracleVsCycleSim(benchmark::State &state)
{
    Index s = state.range(0);
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    Dense<Scalar> e(s, s);
    MatMulPlan plan(a, b, 3);
    for (auto _ : state) {
        MatMulExecResult r = plan.runBlockLevel(e);
        benchmark::DoNotOptimize(r.c);
    }
}
BENCHMARK(BM_BlockOracleVsCycleSim)->Arg(6)->Arg(12)->Arg(24);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
