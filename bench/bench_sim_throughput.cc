/**
 * @file
 * PERF: wall-clock throughput of the simulators themselves (not a
 * paper artifact — engineering data for users of the library):
 * simulated cycles per second of every registered engine, plus
 * scaling of the cycle-level simulators and the block-level oracle.
 *
 * All topologies run through the unified engine layer, so a newly
 * registered engine is benchmarked here with zero code changes.
 */

#include "bench/bench_common.hh"

#include "dbt/matmul_plan.hh"
#include "dbt/matvec_plan.hh"
#include "mat/generate.hh"
#include "sim/mesh_array.hh"
#include "solve/trisolve_plan.hh"

namespace sap {
namespace {

void
print()
{
    printHeader("PERF", "simulator wall-clock throughput "
                        "(google-benchmark timings follow)");

    // One calibration row per engine so the raw numbers are on
    // stdout even without the timers; the same rows are emitted as
    // BENCH_sim_throughput.json for the cross-PR perf trajectory.
    const Index w = 4, s = 4 * w;
    EnginePlan mv = EnginePlan::matVec(randomIntDense(s, s, 1),
                                       randomIntVec(s, 2),
                                       randomIntVec(s, 3), w);
    EnginePlan mm = EnginePlan::matMul(randomIntDense(s, s, 1),
                                       randomIntDense(s, s, 2), w);
    EnginePlan ts = EnginePlan::triSolve(
        randomUnitLowerTriangular(s, 1), randomIntVec(s, 2), w);
    std::vector<BenchJsonEntry> json;
    for (const std::string &name : engineNames()) {
        auto engine = requireEngine(name);
        EngineRunResult r = engine->run(
            engine->kind() == ProblemKind::MatVec   ? mv
            : engine->kind() == ProblemKind::MatMul ? mm
                                                    : ts);
        printEngineRow(name, r);

        BenchJsonEntry e;
        e.name = "calibration";
        e.config = {{"engine", name},
                    {"kind", problemKindName(engine->kind())},
                    {"w", std::to_string(w)},
                    {"s", std::to_string(s)}};
        e.metrics = {
            {"cycles", static_cast<double>(r.stats.cycles)},
            {"useful_macs", static_cast<double>(r.stats.usefulMacs)},
            {"utilization", r.stats.utilization()}};
        json.push_back(std::move(e));
    }
    writeBenchJson("sim_throughput", json);
}

/**
 * Per-engine sweeps over one mid-size problem per kind. These time
 * the end-to-end engine path (DBT transform + simulation per run);
 * the BM_* benches below time the simulators alone.
 */
void
registerSweeps()
{
    registerEngineSweep("engine_matvec", ProblemKind::MatVec, [] {
        const Index w = 8, s = 8 * w;
        return EnginePlan::matVec(randomIntDense(s, s, 1),
                                  randomIntVec(s, 2),
                                  randomIntVec(s, 3), w);
    });
    registerEngineSweep("engine_matmul", ProblemKind::MatMul, [] {
        const Index w = 3, s = 3 * w;
        return EnginePlan::matMul(randomIntDense(s, s, 1),
                                  randomIntDense(s, s, 2), w);
    });
    registerEngineSweep("engine_trisolve", ProblemKind::TriSolve, [] {
        const Index w = 8, s = 8 * w;
        return EnginePlan::triSolve(randomUnitLowerTriangular(s, 1),
                                    randomIntVec(s, 2), w);
    });
}

void
BM_LinearArrayCyclesPerSec(benchmark::State &state)
{
    Index w = state.range(0);
    Index s = 8 * w;
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Vec<Scalar> x = randomIntVec(s, 2);
    Vec<Scalar> b = randomIntVec(s, 3);
    // Plan hoisted out of the loop: this times the simulator alone,
    // comparable with historical numbers.
    MatVecPlan plan(a, w);
    Cycle cycles = 0;
    for (auto _ : state) {
        MatVecPlanResult r = plan.run(x, b);
        cycles += r.stats.cycles;
        benchmark::DoNotOptimize(r.y);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinearArrayCyclesPerSec)->Arg(4)->Arg(8)->Arg(16);

void
BM_HexArrayCyclesPerSec(benchmark::State &state)
{
    Index w = state.range(0);
    Index s = 3 * w;
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    Dense<Scalar> e(s, s);
    MatMulPlan plan(a, b, w);
    Cycle cycles = 0;
    for (auto _ : state) {
        MatMulPlanResult r = plan.run(e);
        cycles += r.totalCycles;
        benchmark::DoNotOptimize(r.c);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HexArrayCyclesPerSec)->Arg(2)->Arg(3)->Arg(4);

void
BM_MeshArrayCyclesPerSec(benchmark::State &state)
{
    Index w = state.range(0);
    Index s = 3 * w;
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    Dense<Scalar> e(s, s);
    MeshMatMulPlan plan(a, b, w);
    Cycle cycles = 0;
    for (auto _ : state) {
        MeshRunResult r = plan.run(e);
        cycles += r.stats.cycles;
        benchmark::DoNotOptimize(r.c);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeshArrayCyclesPerSec)->Arg(2)->Arg(4)->Arg(8);

void
BM_TriArrayCyclesPerSec(benchmark::State &state)
{
    Index w = state.range(0);
    Index s = 8 * w;
    Dense<Scalar> l = randomUnitLowerTriangular(s, 1);
    Vec<Scalar> b = randomIntVec(s, 2);
    TriSolvePlan plan(l, w);
    Cycle cycles = 0;
    for (auto _ : state) {
        TriSolvePlanResult r = plan.run(b);
        cycles += r.stats.cycles;
        benchmark::DoNotOptimize(r.y);
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TriArrayCyclesPerSec)->Arg(4)->Arg(8)->Arg(16);

void
BM_BlockOracleVsCycleSim(benchmark::State &state)
{
    Index s = state.range(0);
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    Dense<Scalar> e(s, s);
    MatMulPlan plan(a, b, 3);
    for (auto _ : state) {
        MatMulExecResult r = plan.runBlockLevel(e);
        benchmark::DoNotOptimize(r.c);
    }
}
BENCHMARK(BM_BlockOracleVsCycleSim)->Arg(6)->Arg(12)->Arg(24);

} // namespace
} // namespace sap

SAP_BENCH_MAIN_WITH_REGISTRATION(sap::print, sap::registerSweeps)
