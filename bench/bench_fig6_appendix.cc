/**
 * @file
 * Figure 6 / Appendix reproduction: the I/O band composition. For
 * the paper's shape (n̄=2, p̄=2, m̄=3) prints, per band block row k,
 * where each of the five parts (U_{k,0}, L_{k,0}, D_k, U_{k,1},
 * L_{k,1}) of the input band I comes from — an E block, a fed-back
 * O block, or zero — plus the extraction map of every C block, and
 * verifies the round trip C = A·B + E.
 */

#include "bench/bench_common.hh"

#include "dbt/matmul_exec.hh"
#include "dbt/matmul_plan.hh"
#include "mat/generate.hh"
#include "mat/ops.hh"

namespace sap {
namespace {

std::string
describe(const IoSource &src)
{
    switch (src.kind) {
      case IoSource::Kind::Zero:
        return "0";
      case IoSource::Kind::FromE:
        return "E(" + std::to_string(src.eRow) + "," +
               std::to_string(src.eCol) + ")";
      case IoSource::Kind::FromO:
        return std::string(src.irregular ? "O*[" : "O[") +
               std::to_string(src.oRow) + "," +
               bandPartName(src.oPart) + "]";
    }
    return "?";
}

void
print()
{
    printHeader("F6/APP", "I-band composition and C extraction "
                          "(n̄=2, p̄=2, m̄=3; O* = irregular "
                          "long-delay feedback)");

    MatMulDims d{6, 6, 9, 3, 2, 2, 3};
    IoComposer comp(d);
    const Index K = d.blockCount();

    std::printf("%4s %-14s %-12s %-10s %-12s %-14s\n", "k",
                "U_{k,0}", "L_{k,0}", "D_k", "U_{k,1}", "L_{k,1}");
    for (Index k = 0; k <= K; ++k) {
        std::string u0 = k >= 1
            ? describe(comp.inputSource(k, BandPart::USub)) : "-";
        std::string l1 = k <= K - 1
            ? describe(comp.inputSource(k, BandPart::LSuper)) : "-";
        std::printf("%4lld %-14s %-12s %-10s %-12s %-14s\n",
                    (long long)k, u0.c_str(),
                    describe(comp.inputSource(k, BandPart::LDiag))
                        .c_str(),
                    describe(comp.inputSource(k, BandPart::Diag))
                        .c_str(),
                    describe(comp.inputSource(k, BandPart::UDiag))
                        .c_str(),
                    l1.c_str());
    }

    std::printf("\nextraction of C blocks from O:\n");
    for (Index i = 0; i < d.nbar; ++i) {
        for (Index j = 0; j < d.mbar; ++j) {
            ExtractSource u = comp.extractSource(i, j,
                                                 BandPart::UDiag);
            ExtractSource dd = comp.extractSource(i, j,
                                                  BandPart::Diag);
            ExtractSource l = comp.extractSource(i, j,
                                                 BandPart::LDiag);
            std::printf("  C(%lld,%lld): U<-O[%lld,%s]  D<-O[%lld,%s]"
                        "  L<-O[%lld,%s]\n",
                        (long long)i, (long long)j, (long long)u.oRow,
                        bandPartName(u.oPart).c_str(),
                        (long long)dd.oRow,
                        bandPartName(dd.oPart).c_str(),
                        (long long)l.oRow,
                        bandPartName(l.oPart).c_str());
        }
    }

    // Round trip.
    Dense<Scalar> a = randomIntDense(6, 6, 71);
    Dense<Scalar> b = randomIntDense(6, 9, 72);
    Dense<Scalar> e = randomIntDense(6, 9, 73);
    MatMulTransform t(a, b, 3);
    MatMulExecResult r = execTransformedMatMul(t, e);
    std::printf("\nround trip C = A·B + E exact: %s\n",
                maxAbsDiff(r.c, matMulAdd(a, b, e)) == 0.0 ? "yes"
                                                           : "NO");
}

void
BM_BlockLevelExec(benchmark::State &state)
{
    Index s = state.range(0);
    Dense<Scalar> a = randomIntDense(s, s, 1);
    Dense<Scalar> b = randomIntDense(s, s, 2);
    Dense<Scalar> e(s, s);
    MatMulTransform t(a, b, 3);
    for (auto _ : state) {
        MatMulExecResult r = execTransformedMatMul(t, e);
        benchmark::DoNotOptimize(r.c);
    }
}
BENCHMARK(BM_BlockLevelExec)->Arg(6)->Arg(12)->Arg(24);

} // namespace
} // namespace sap

SAP_BENCH_MAIN(sap::print)
