/**
 * @file
 * Live terminal dashboard for a running NetServer: one row per
 * interval, vmstat-style, from consecutive METRICS snapshots over
 * the binary wire protocol.
 *
 * Columns are *per interval*, never cumulative: requests and
 * failures per second, interval p50/p99 latency (exact bucket
 * subtraction via metricsDelta — the same math the server's flight
 * recorder applies), current queue depth, plan-cache hit rate over
 * the interval, and wire bytes in/out per second. This is the
 * number an operator actually wants when a backend misbehaves; the
 * cumulative story lives in `sap_stats` / the admin plane's
 * /metrics.
 *
 * Usage:
 *   sap_top --port P [--host H] [--interval SECS] [--count N]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "tools/tool_common.hh"

using namespace sap;
using namespace sap::tools;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port P [--host H] [--interval SECS] [--count N]\n"
        "  --port P         server TCP port (required)\n"
        "  --host H         server IPv4 address (default 127.0.0.1)\n"
        "  --interval SECS  refresh interval (default 1.0)\n"
        "  --count N        stop after N rows (default: forever)\n",
        argv0);
}

void
printHeader()
{
    std::printf("%10s %10s %10s %10s %8s %7s %12s %12s\n", "req/s",
                "fail/s", "p50_us", "p99_us", "queue", "cache%",
                "in_B/s", "out_B/s");
}

void
printRow(const DashboardRow &row)
{
    std::printf("%10.1f %10.1f %10.1f %10.1f %8.0f %7.1f %12.0f "
                "%12.0f\n",
                row.reqPerSec, row.failPerSec, row.p50Micros,
                row.p99Micros, row.queueDepth,
                row.cacheHitRatio * 100.0, row.bytesInPerSec,
                row.bytesOutPerSec);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    long port = -1;
    double interval = 1.0;
    long count = -1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--port") == 0)
            port = std::strtol(value(), nullptr, 10);
        else if (std::strcmp(arg, "--host") == 0)
            host = value();
        else if (std::strcmp(arg, "--interval") == 0)
            interval = std::strtod(value(), nullptr);
        else if (std::strcmp(arg, "--count") == 0)
            count = std::strtol(value(), nullptr, 10);
        else if (std::strcmp(arg, "-h") == 0 ||
                 std::strcmp(arg, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            usage(argv[0]);
            return 2;
        }
    }
    if (interval <= 0)
        interval = 1.0;

    NetClient client;
    if (!connectOrComplain(client, host, port)) {
        if (port <= 0 || port > 65535)
            usage(argv[0]);
        return port <= 0 || port > 65535 ? 2 : 1;
    }

    MetricsSnapshot prev;
    if (!fetchOrComplain(client, &prev))
        return 1;
    auto t_prev = std::chrono::steady_clock::now();

    printHeader();
    for (long i = 0; count < 0 || i < count; ++i) {
        // Re-print the header every screenful, like vmstat.
        if (i > 0 && i % 20 == 0)
            printHeader();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
        MetricsSnapshot snap;
        if (!fetchOrComplain(client, &snap))
            return 1;
        const auto t_now = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t_now - t_prev).count();
        printRow(dashboardRow(metricsDelta(snap, prev), secs));
        prev = std::move(snap);
        t_prev = t_now;
    }
    return 0;
}
