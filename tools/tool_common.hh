/**
 * @file
 * Shared plumbing for the operator CLIs (sap_stats, sap_top): the
 * connect-and-fetch helpers and the per-interval dashboard row both
 * tools derive from consecutive METRICS snapshots. Header-only so
 * the tools stay single-file; the row computation is pure (snapshot
 * delta in, numbers out) and unit-tested from tests/test_http_admin.
 */

#ifndef SAP_TOOLS_TOOL_COMMON_HH
#define SAP_TOOLS_TOOL_COMMON_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "net/client.hh"
#include "obs/metrics.hh"

namespace sap {
namespace tools {

inline std::uint64_t
counterOf(const MetricsSnapshot &snap, const std::string &name)
{
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

inline double
gaugeOf(const MetricsSnapshot &snap, const std::string &name)
{
    auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? 0 : it->second.value;
}

/**
 * One dashboard interval, derived from metricsDelta(now, prev) over
 * @p seconds: the per-second/interval numbers an operator watches,
 * not cumulative totals.
 */
struct DashboardRow
{
    double reqPerSec = 0;
    double failPerSec = 0;
    double p50Micros = 0;
    double p99Micros = 0;
    double queueDepth = 0;
    /** Plan-cache hit fraction this interval, in [0, 1]; 0 when the
     *  interval had no lookups. */
    double cacheHitRatio = 0;
    double bytesInPerSec = 0;
    double bytesOutPerSec = 0;
};

/** Compute a row from an interval delta (see metricsDelta). */
inline DashboardRow
dashboardRow(const MetricsSnapshot &delta, double seconds)
{
    DashboardRow row;
    const double secs = seconds > 0 ? seconds : 1;
    row.reqPerSec =
        double(counterOf(delta, "serve_requests_total")) / secs;
    row.failPerSec =
        double(counterOf(delta, "serve_failures_total")) / secs;
    auto it = delta.histograms.find("serve_latency_micros");
    if (it != delta.histograms.end() && it->second.count > 0) {
        row.p50Micros = it->second.quantile(0.5);
        row.p99Micros = it->second.quantile(0.99);
    }
    row.queueDepth = gaugeOf(delta, "serve_queue_depth");
    const double hits =
        double(counterOf(delta, "plan_cache_hits_total"));
    const double misses =
        double(counterOf(delta, "plan_cache_misses_total"));
    if (hits + misses > 0)
        row.cacheHitRatio = hits / (hits + misses);
    row.bytesInPerSec =
        double(counterOf(delta, "net_bytes_received_total")) / secs;
    row.bytesOutPerSec =
        double(counterOf(delta, "net_bytes_sent_total")) / secs;
    return row;
}

/** Connect, or print the failure and return false. */
inline bool
connectOrComplain(NetClient &client, const std::string &host, long port)
{
    if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "invalid --port %ld\n", port);
        return false;
    }
    if (!client.connect(host, static_cast<std::uint16_t>(port))) {
        std::fprintf(stderr, "connect %s:%ld: %s\n", host.c_str(),
                     port, client.lastError().c_str());
        return false;
    }
    return true;
}

/** Fetch a METRICS snapshot, or print the failure and return false. */
inline bool
fetchOrComplain(NetClient &client, MetricsSnapshot *out)
{
    if (!client.metrics(out)) {
        std::fprintf(stderr, "METRICS fetch failed: %s\n",
                     client.lastError().c_str());
        return false;
    }
    return true;
}

} // namespace tools
} // namespace sap

#endif // SAP_TOOLS_TOOL_COMMON_HH
