/**
 * @file
 * Operator CLI that runs a gateway in the foreground: one front-door
 * port routing SUBMITs over a fleet of NetServer backends by plan
 * digest (net/gateway.hh), with failover, until SIGINT/SIGTERM.
 *
 * Backends are listed as PORT or HOST:PORT or HOST:PORT:ADMIN_PORT;
 * with an admin port the gateway probes that backend's /healthz
 * plane in addition to PING liveness, so an operator can drain a
 * backend by flipping its health without touching its socket.
 *
 * On exit (and every --stats-interval seconds while running) the
 * gateway's counters are printed: requests routed, responses
 * relayed, failovers, resubmits, errors returned, routable backends.
 *
 * --admin-port starts the embedded admin plane (/metrics, /varz,
 * /healthz, /readyz, /timeseriesz, and the stitched cross-tier
 * /tracez); --trace turns on edge head-sampled request tracing,
 * propagated to the backends over the FORWARD trace-context block.
 *
 * Usage:
 *   sap_gateway --backend SPEC [--backend SPEC ...]
 *               [--port P] [--admin-port P] [--stats-interval SECS]
 *               [--trace] [--sample-every N] [--slow-us MICROS]
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/gateway.hh"

using namespace sap;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --backend SPEC [--backend SPEC ...] [options]\n"
        "  --backend SPEC        PORT | HOST:PORT | "
        "HOST:PORT:ADMIN_PORT\n"
        "                        (repeat per backend; admin port "
        "enables\n"
        "                        /healthz probing of that backend)\n"
        "  --port P              client-facing port (default: "
        "ephemeral,\n"
        "                        printed on startup)\n"
        "  --stats-interval S    print counters every S seconds "
        "(default\n"
        "                        10; 0 = only on exit)\n"
        "  --admin-port P        serve the admin HTTP plane (incl. "
        "the\n"
        "                        stitched cross-tier /tracez) on P "
        "(0 =\n"
        "                        ephemeral, printed on startup)\n"
        "  --trace               head-sample request traces at the "
        "edge\n"
        "                        and propagate them to the backends\n"
        "  --sample-every N      trace 1 in N requests (default 64;\n"
        "                        1 = all)\n"
        "  --slow-us MICROS      always trace+warn requests slower "
        "than\n"
        "                        MICROS (default 0 = off)\n",
        argv0);
}

/** PORT | HOST:PORT | HOST:PORT:ADMIN_PORT → BackendAddr. */
bool
parseBackend(const std::string &spec, Gateway::BackendAddr *out)
{
    std::string host = "127.0.0.1", port_s = spec, admin_s;
    std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
        host = spec.substr(0, colon);
        port_s = spec.substr(colon + 1);
        std::size_t colon2 = port_s.find(':');
        if (colon2 != std::string::npos) {
            admin_s = port_s.substr(colon2 + 1);
            port_s = port_s.substr(0, colon2);
        }
    }
    char *end = nullptr;
    long port = std::strtol(port_s.c_str(), &end, 10);
    if (!end || *end || port <= 0 || port > 65535)
        return false;
    long admin = 0;
    if (!admin_s.empty()) {
        admin = std::strtol(admin_s.c_str(), &end, 10);
        if (!end || *end || admin <= 0 || admin > 65535)
            return false;
    }
    out->host = host.empty() ? "127.0.0.1" : host;
    out->port = static_cast<std::uint16_t>(port);
    out->adminPort = static_cast<std::uint16_t>(admin);
    return true;
}

void
printStats(const Gateway &gw, std::size_t fleet_size)
{
    GatewayStats s = gw.stats();
    std::printf("routed %llu  relayed %llu  failovers %llu  "
                "resubmits %llu  errors %llu  routable %zu/%zu\n",
                static_cast<unsigned long long>(s.requestsRouted),
                static_cast<unsigned long long>(s.responsesRelayed),
                static_cast<unsigned long long>(s.failovers),
                static_cast<unsigned long long>(s.resubmits),
                static_cast<unsigned long long>(s.errorsReturned),
                gw.routableBackends(), fleet_size);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    Gateway::Options opts;
    int stats_interval = 10;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--backend") {
            const char *spec = next();
            Gateway::BackendAddr addr;
            if (!spec || !parseBackend(spec, &addr)) {
                std::fprintf(stderr, "bad --backend spec\n");
                usage(argv[0]);
                return 2;
            }
            opts.backends.push_back(addr);
        } else if (arg == "--port") {
            const char *p = next();
            if (!p) {
                usage(argv[0]);
                return 2;
            }
            opts.port = static_cast<std::uint16_t>(std::atoi(p));
        } else if (arg == "--stats-interval") {
            const char *p = next();
            if (!p) {
                usage(argv[0]);
                return 2;
            }
            stats_interval = std::atoi(p);
        } else if (arg == "--admin-port") {
            const char *p = next();
            if (!p) {
                usage(argv[0]);
                return 2;
            }
            opts.adminEnabled = true;
            opts.adminPort =
                static_cast<std::uint16_t>(std::atoi(p));
        } else if (arg == "--trace") {
            opts.trace.enabled = true;
        } else if (arg == "--sample-every") {
            const char *p = next();
            if (!p) {
                usage(argv[0]);
                return 2;
            }
            opts.trace.enabled = true;
            opts.trace.sampleEvery =
                static_cast<std::uint32_t>(std::atoi(p));
        } else if (arg == "--slow-us") {
            const char *p = next();
            if (!p) {
                usage(argv[0]);
                return 2;
            }
            opts.trace.enabled = true;
            opts.trace.slowMicros = std::atof(p);
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }
    if (opts.backends.empty()) {
        std::fprintf(stderr, "at least one --backend is required\n");
        usage(argv[0]);
        return 2;
    }

    Gateway gw(opts);
    if (!gw.start()) {
        std::fprintf(stderr, "gateway start failed: %s\n",
                     gw.error().c_str());
        return 1;
    }
    std::printf("gateway listening on 127.0.0.1:%u over %zu "
                "backends\n",
                gw.port(), opts.backends.size());
    if (opts.adminEnabled)
        std::printf("admin plane on 127.0.0.1:%u (curl /tracez for "
                    "stitched traces)\n",
                    gw.adminPort());
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    auto last_stats = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (stats_interval > 0 &&
            std::chrono::steady_clock::now() - last_stats >=
                std::chrono::seconds(stats_interval)) {
            printStats(gw, opts.backends.size());
            last_stats = std::chrono::steady_clock::now();
        }
    }
    std::printf("shutting down\n");
    printStats(gw, opts.backends.size());
    gw.stop();
    return 0;
}
