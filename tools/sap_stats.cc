/**
 * @file
 * Operator CLI for a running NetServer: fetch the installation-wide
 * obs/ metrics snapshot over the METRICS wire frame and print it.
 *
 * Two modes:
 *
 *  - One-shot (default): print the merged snapshot as Prometheus
 *    text exposition — pipe into a file and point any Prometheus
 *    tooling at it, or just read it.
 *
 *  - Watch (--watch N): every N seconds fetch a fresh snapshot and
 *    print the *delta* against the previous one — counter rates,
 *    current gauge values, and interval latency quantiles computed
 *    from the histogram bucket difference (exact, because merged
 *    histograms subtract bucket-by-bucket just as they add).
 *
 * The snapshot is NetServer::metricsSnapshot() over the wire: the
 * server's wire-level registry merged with every shard's registry,
 * histograms merged exactly by bucket addition.
 *
 * Usage:
 *   sap_stats --port P [--host H] [--watch SECS] [--count N]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hh"
#include "obs/metrics.hh"

using namespace sap;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port P [--host H] [--watch SECS] [--count N]\n"
        "  --port P      server TCP port (required)\n"
        "  --host H      server IPv4 address (default 127.0.0.1)\n"
        "  --watch SECS  poll every SECS seconds and print deltas\n"
        "                (default: one Prometheus text dump)\n"
        "  --count N     stop after N watch intervals (default: "
        "forever)\n",
        argv0);
}

/**
 * The interval histogram: @p now minus @p prev, bucket-by-bucket.
 * Min/max are not subtractable, so the diff takes its bounds from
 * the populated buckets — quantiles stay exact to bucket resolution.
 */
HistogramSnapshot
histDiff(const HistogramSnapshot &now, const HistogramSnapshot &prev)
{
    std::vector<std::uint64_t> dense(kHistBuckets, 0);
    for (std::size_t i = 0; i < now.bucketIndex.size(); ++i)
        dense[now.bucketIndex[i]] += now.bucketCount[i];
    for (std::size_t i = 0; i < prev.bucketIndex.size(); ++i) {
        std::uint64_t &d = dense[prev.bucketIndex[i]];
        d = d >= prev.bucketCount[i] ? d - prev.bucketCount[i] : 0;
    }
    HistogramSnapshot diff;
    diff.sum = now.sum - prev.sum;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
        if (dense[i] == 0)
            continue;
        diff.bucketIndex.push_back(static_cast<std::uint32_t>(i));
        diff.bucketCount.push_back(dense[i]);
        diff.count += dense[i];
        if (diff.bucketIndex.size() == 1)
            diff.min = histBucketLower(i);
        // Overflow bucket has no finite upper bound; report the last
        // finite boundary instead.
        diff.max = i + 1 < kHistBuckets
                       ? histBucketUpper(i)
                       : histBucketUpper(kHistBuckets - 2);
    }
    return diff;
}

std::uint64_t
counterOf(const MetricsSnapshot &snap, const std::string &name)
{
    auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

void
printDelta(const MetricsSnapshot &now, const MetricsSnapshot &prev,
           double secs)
{
    std::printf("---- interval: %.1fs ----\n", secs);
    std::printf("%-36s %12s %10s\n", "counter", "delta", "per_s");
    for (const auto &entry : now.counters) {
        std::uint64_t d = entry.second - counterOf(prev, entry.first);
        if (d == 0)
            continue;
        std::printf("%-36s %12llu %10.1f\n", entry.first.c_str(),
                    static_cast<unsigned long long>(d),
                    secs > 0 ? static_cast<double>(d) / secs : 0.0);
    }
    std::printf("%-36s %12s\n", "gauge", "value");
    for (const auto &entry : now.gauges)
        std::printf("%-36s %12.3f\n", entry.first.c_str(),
                    entry.second.value);
    std::printf("%-36s %8s %10s %10s %10s\n", "histogram", "n",
                "mean", "p50", "p99");
    for (const auto &entry : now.histograms) {
        auto it = prev.histograms.find(entry.first);
        HistogramSnapshot d =
            it == prev.histograms.end()
                ? entry.second
                : histDiff(entry.second, it->second);
        if (d.count == 0)
            continue;
        std::printf("%-36s %8llu %10.2f %10.2f %10.2f\n",
                    entry.first.c_str(),
                    static_cast<unsigned long long>(d.count), d.mean(),
                    d.quantile(0.5), d.quantile(0.99));
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    long port = -1;
    double watch = 0;
    long count = -1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--port") == 0)
            port = std::strtol(value(), nullptr, 10);
        else if (std::strcmp(arg, "--host") == 0)
            host = value();
        else if (std::strcmp(arg, "--watch") == 0)
            watch = std::strtod(value(), nullptr);
        else if (std::strcmp(arg, "--count") == 0)
            count = std::strtol(value(), nullptr, 10);
        else if (std::strcmp(arg, "-h") == 0 ||
                 std::strcmp(arg, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            usage(argv[0]);
            return 2;
        }
    }
    if (port <= 0 || port > 65535) {
        usage(argv[0]);
        return 2;
    }

    NetClient client;
    if (!client.connect(host, static_cast<std::uint16_t>(port))) {
        std::fprintf(stderr, "connect %s:%ld: %s\n", host.c_str(),
                     port, client.lastError().c_str());
        return 1;
    }

    if (watch <= 0) {
        MetricsSnapshot snap;
        if (!client.metrics(&snap)) {
            std::fprintf(stderr, "METRICS fetch failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        std::fputs(renderPrometheus(snap).c_str(), stdout);
        return 0;
    }

    // Baseline snapshot, then one delta per interval.
    MetricsSnapshot prev;
    if (!client.metrics(&prev)) {
        std::fprintf(stderr, "METRICS fetch failed: %s\n",
                     client.lastError().c_str());
        return 1;
    }
    auto t_prev = std::chrono::steady_clock::now();
    for (long i = 0; count < 0 || i < count; ++i) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(watch));
        MetricsSnapshot snap;
        if (!client.metrics(&snap)) {
            std::fprintf(stderr, "METRICS fetch failed: %s\n",
                         client.lastError().c_str());
            return 1;
        }
        auto t_now = std::chrono::steady_clock::now();
        printDelta(
            snap, prev,
            std::chrono::duration<double>(t_now - t_prev).count());
        prev = std::move(snap);
        t_prev = t_now;
    }
    return 0;
}
