/**
 * @file
 * Operator CLI for a running NetServer: fetch the installation-wide
 * obs/ metrics snapshot over the METRICS wire frame and print it.
 *
 * Three modes:
 *
 *  - One-shot (default): print the merged snapshot as Prometheus
 *    text exposition — pipe into a file and point any Prometheus
 *    tooling at it, or just read it.
 *
 *  - One-shot JSON (--json): the same snapshot as a single JSON
 *    object (renderMetricsJson), for scripts and CI assertions.
 *
 *  - Watch (--watch N): every N seconds fetch a fresh snapshot and
 *    print the *delta* against the previous one — counter rates,
 *    current gauge values, and interval latency quantiles computed
 *    from the histogram bucket difference (exact, because merged
 *    histograms subtract bucket-by-bucket just as they add; see
 *    metricsDelta in obs/metrics.hh, shared with sap_top).
 *
 * The snapshot is NetServer::metricsSnapshot() over the wire: the
 * server's wire-level registry merged with every shard's registry,
 * histograms merged exactly by bucket addition. The admin HTTP
 * plane serves the same data at /metrics and /varz for curl.
 *
 * Usage:
 *   sap_stats --port P [--host H] [--json | --watch SECS [--count N]]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "tools/tool_common.hh"

using namespace sap;
using namespace sap::tools;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --port P [--host H] [--json | --watch SECS]\n"
        "  --port P      server TCP port (required)\n"
        "  --host H      server IPv4 address (default 127.0.0.1)\n"
        "  --json        one JSON snapshot instead of Prometheus "
        "text\n"
        "  --watch SECS  poll every SECS seconds and print deltas\n"
        "                (default: one Prometheus text dump)\n"
        "  --count N     stop after N watch intervals (default: "
        "forever)\n",
        argv0);
}

void
printDelta(const MetricsSnapshot &delta, double secs)
{
    std::printf("---- interval: %.1fs ----\n", secs);
    std::printf("%-36s %12s %10s\n", "counter", "delta", "per_s");
    for (const auto &entry : delta.counters) {
        if (entry.second == 0)
            continue;
        std::printf("%-36s %12llu %10.1f\n", entry.first.c_str(),
                    static_cast<unsigned long long>(entry.second),
                    secs > 0 ? double(entry.second) / secs : 0.0);
    }
    std::printf("%-36s %12s\n", "gauge", "value");
    for (const auto &entry : delta.gauges)
        std::printf("%-36s %12.3f\n", entry.first.c_str(),
                    entry.second.value);
    std::printf("%-36s %8s %10s %10s %10s\n", "histogram", "n",
                "mean", "p50", "p99");
    for (const auto &entry : delta.histograms) {
        const HistogramSnapshot &d = entry.second;
        if (d.count == 0)
            continue;
        std::printf("%-36s %8llu %10.2f %10.2f %10.2f\n",
                    entry.first.c_str(),
                    static_cast<unsigned long long>(d.count), d.mean(),
                    d.quantile(0.5), d.quantile(0.99));
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    long port = -1;
    double watch = 0;
    long count = -1;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--port") == 0)
            port = std::strtol(value(), nullptr, 10);
        else if (std::strcmp(arg, "--host") == 0)
            host = value();
        else if (std::strcmp(arg, "--watch") == 0)
            watch = std::strtod(value(), nullptr);
        else if (std::strcmp(arg, "--count") == 0)
            count = std::strtol(value(), nullptr, 10);
        else if (std::strcmp(arg, "--json") == 0)
            json = true;
        else if (std::strcmp(arg, "-h") == 0 ||
                 std::strcmp(arg, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg);
            usage(argv[0]);
            return 2;
        }
    }
    if (port <= 0 || port > 65535) {
        usage(argv[0]);
        return 2;
    }
    if (json && watch > 0) {
        std::fprintf(stderr, "--json and --watch are exclusive\n");
        return 2;
    }

    NetClient client;
    if (!connectOrComplain(client, host, port))
        return 1;

    if (watch <= 0) {
        MetricsSnapshot snap;
        if (!fetchOrComplain(client, &snap))
            return 1;
        if (json) {
            std::fputs(renderMetricsJson(snap).c_str(), stdout);
            std::fputc('\n', stdout);
        } else {
            std::fputs(renderPrometheus(snap).c_str(), stdout);
        }
        return 0;
    }

    // Baseline snapshot, then one delta per interval.
    MetricsSnapshot prev;
    if (!fetchOrComplain(client, &prev))
        return 1;
    auto t_prev = std::chrono::steady_clock::now();
    for (long i = 0; count < 0 || i < count; ++i) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(watch));
        MetricsSnapshot snap;
        if (!fetchOrComplain(client, &snap))
            return 1;
        auto t_now = std::chrono::steady_clock::now();
        printDelta(
            metricsDelta(snap, prev),
            std::chrono::duration<double>(t_now - t_prev).count());
        prev = std::move(snap);
        t_prev = t_now;
    }
    return 0;
}
